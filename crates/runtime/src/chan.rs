//! Go-style channels: rendezvous (unbuffered) and buffered, with close
//! semantics, `range` iteration, and the waiter/commit protocol that
//! select cases participate in.
//!
//! Semantics follow the Go specification:
//!
//! * an unbuffered send blocks until a receiver is ready, and vice versa
//!   (rendezvous);
//! * a buffered send blocks only when the buffer is full; a receive
//!   blocks only when it is empty;
//! * receiving from a closed channel drains the buffer and then yields
//!   `None` (Go's zero value with `ok = false`);
//! * sending on a closed channel panics; closing a closed channel panics.
//!
//! Because the runtime schedules exactly one goroutine at a time, channel
//! state transitions are serial; the per-channel lock only protects
//! against the brief hand-off window.

use crate::rt::{
    block_current, cu_here, current, gopanic, op_enter, Ctx, Sched, SelToken, TimerTarget,
};
use goat_model::CuKind;
use goat_trace::{BlockReason, EventKind, Gid, RId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Outcome of a (possibly blocked) send, delivered through an [`OpSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendOutcome {
    /// The value was taken by a receiver (or buffered).
    Sent,
    /// The channel was closed while the sender was blocked.
    Closed,
}

/// Outcome of a (possibly blocked) receive.
#[derive(Debug)]
pub(crate) enum RecvOutcome<T> {
    /// A value arrived.
    Val(T),
    /// The channel closed (and was drained).
    Closed,
}

/// One-shot outcome mailbox shared between a blocked goroutine and the
/// goroutine that completes its operation.
pub(crate) struct OpSlot<O>(Mutex<Option<O>>);

impl<O> OpSlot<O> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(OpSlot(Mutex::new(None)))
    }

    pub(crate) fn put(&self, o: O) {
        let mut g = self.0.lock();
        debug_assert!(g.is_none(), "op slot filled twice");
        *g = Some(o);
    }

    pub(crate) fn take(&self) -> Option<O> {
        self.0.lock().take()
    }
}

struct SendWaiter<T> {
    g: Gid,
    val: Option<T>,
    /// `Some((token, case idx))` when this entry belongs to a select.
    sel: Option<(Arc<SelToken>, usize)>,
    slot: Arc<OpSlot<SendOutcome>>,
}

struct RecvWaiter<T> {
    g: Gid,
    sel: Option<(Arc<SelToken>, usize)>,
    slot: Arc<OpSlot<RecvOutcome<T>>>,
}

struct ChanSt<T> {
    buf: VecDeque<T>,
    closed: bool,
    senders: VecDeque<SendWaiter<T>>,
    recvers: VecDeque<RecvWaiter<T>>,
}

pub(crate) struct ChanCore<T> {
    pub(crate) id: RId,
    cap: usize,
    st: Mutex<ChanSt<T>>,
}

impl<T> ChanSt<T> {
    /// Pop the next *live* sender entry, committing select entries.
    fn pop_valid_sender(&mut self) -> Option<SendWaiter<T>> {
        while let Some(w) = self.senders.pop_front() {
            match &w.sel {
                None => return Some(w),
                Some((tok, idx)) => {
                    if tok.try_commit(*idx) {
                        return Some(w);
                    }
                    // Stale registration of a select that already won
                    // elsewhere; drop it.
                }
            }
        }
        None
    }

    fn pop_valid_recver(&mut self) -> Option<RecvWaiter<T>> {
        while let Some(w) = self.recvers.pop_front() {
            match &w.sel {
                None => return Some(w),
                Some((tok, idx)) => {
                    if tok.try_commit(*idx) {
                        return Some(w);
                    }
                }
            }
        }
        None
    }

    fn has_valid_sender(&self) -> bool {
        self.senders.iter().any(|w| match &w.sel {
            None => true,
            Some((tok, _)) => tok.winner().is_none(),
        })
    }

    fn has_valid_recver(&self) -> bool {
        self.recvers.iter().any(|w| match &w.sel {
            None => true,
            Some((tok, _)) => tok.winner().is_none(),
        })
    }
}

/// A typed Go-style channel handle. Cloning shares the channel.
///
/// ```
/// use goat_runtime::{Runtime, Config, go, Chan};
/// let r = Runtime::run(Config::new(0), || {
///     let ch: Chan<u32> = Chan::new(0); // unbuffered
///     let tx = ch.clone();
///     go(move || tx.send(7));
///     assert_eq!(ch.recv(), Some(7));
/// });
/// assert!(r.clean());
/// ```
pub struct Chan<T> {
    core: Arc<ChanCore<T>>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        Chan { core: Arc::clone(&self.core) }
    }
}

impl<T> std::fmt::Debug for Chan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chan").field("id", &self.core.id).field("cap", &self.core.cap).finish()
    }
}

impl<T: Send + 'static> Chan<T> {
    /// Create a channel with buffer capacity `cap` (`0` = rendezvous).
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn new(cap: usize) -> Chan<T> {
        let ctx = current();
        let id = ctx.rt.state.lock().alloc_rid();
        ctx.rt.tb.push(ctx.gid, EventKind::ChMake { ch: id, cap }, None);
        Chan {
            core: Arc::new(ChanCore {
                id,
                cap,
                st: Mutex::new(ChanSt {
                    buf: VecDeque::new(),
                    closed: false,
                    senders: VecDeque::new(),
                    recvers: VecDeque::new(),
                }),
            }),
        }
    }

    /// Send a value, blocking until a receiver (or buffer space) is
    /// available.
    ///
    /// # Panics
    /// Panics (crashing the program, like Go) if the channel is closed.
    #[track_caller]
    pub fn send(&self, v: T) {
        let cu = cu_here(CuKind::Send, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Send, &cu);
        self.core.send_impl(&ctx, v, cu);
    }

    /// Try to send without blocking; returns the value back on failure.
    ///
    /// # Errors
    /// Returns `Err(v)` when the channel is full (or rendezvous has no
    /// waiting receiver).
    ///
    /// # Panics
    /// Panics if the channel is closed.
    #[track_caller]
    pub fn try_send(&self, v: T) -> Result<(), T> {
        let cu = cu_here(CuKind::Send, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Send, &cu);
        let mut st = self.core.st.lock();
        if st.closed {
            drop(st);
            gopanic("send on closed channel");
        }
        if let Some(rw) = st.pop_valid_recver() {
            rw.slot.put(RecvOutcome::Val(v));
            drop(st);
            ctx.rt.state.lock().wake(rw.g, ctx.gid, Some(cu));
            ctx.rt.tb.push(ctx.gid, EventKind::ChSend { ch: self.core.id }, Some(cu));
            return Ok(());
        }
        if st.buf.len() < self.core.cap {
            st.buf.push_back(v);
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::ChSend { ch: self.core.id }, Some(cu));
            return Ok(());
        }
        Err(v)
    }

    /// Receive a value; blocks until one is available. Returns `None`
    /// once the channel is closed and drained.
    #[track_caller]
    pub fn recv(&self) -> Option<T> {
        let cu = cu_here(CuKind::Recv, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Recv, &cu);
        self.core.recv_impl(&ctx, cu)
    }

    /// Try to receive without blocking.
    ///
    /// Returns `Some(Some(v))` for a value, `Some(None)` when closed and
    /// drained, `None` when nothing is available yet.
    #[track_caller]
    pub fn try_recv(&self) -> Option<Option<T>> {
        let cu = cu_here(CuKind::Recv, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Recv, &cu);
        let core = &self.core;
        let mut st = core.st.lock();
        if let Some(v) = st.buf.pop_front() {
            core.refill_from_sender(&ctx, &mut st, &cu);
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: core.id, closed: false }, Some(cu));
            return Some(Some(v));
        }
        if let Some(mut sw) = st.pop_valid_sender() {
            let v = sw.val.take().expect("blocked sender always holds a value");
            sw.slot.put(SendOutcome::Sent);
            drop(st);
            ctx.rt.state.lock().wake(sw.g, ctx.gid, Some(cu));
            ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: core.id, closed: false }, Some(cu));
            return Some(Some(v));
        }
        if st.closed {
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: core.id, closed: true }, Some(cu));
            return Some(None);
        }
        None
    }

    /// Close the channel, waking all blocked senders (which then panic)
    /// and receivers (which observe the close).
    ///
    /// # Panics
    /// Panics if the channel is already closed.
    #[track_caller]
    pub fn close(&self) {
        let cu = cu_here(CuKind::Close, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Close, &cu);
        let mut st = self.core.st.lock();
        if st.closed {
            drop(st);
            gopanic("close of closed channel");
        }
        st.closed = true;
        let mut woken: Vec<Gid> = Vec::new();
        while let Some(rw) = st.pop_valid_recver() {
            rw.slot.put(RecvOutcome::Closed);
            woken.push(rw.g);
        }
        while let Some(sw) = st.pop_valid_sender() {
            sw.slot.put(SendOutcome::Closed);
            woken.push(sw.g);
        }
        drop(st);
        if !woken.is_empty() {
            let mut s = ctx.rt.state.lock();
            for g in woken {
                s.wake(g, ctx.gid, Some(cu));
            }
        }
        ctx.rt.tb.push(ctx.gid, EventKind::ChClose { ch: self.core.id }, Some(cu));
    }

    /// Iterate over values until the channel closes (Go's
    /// `for v := range ch`). Each iteration is a traced receive at this
    /// call site with CU kind `range`.
    #[track_caller]
    pub fn range(&self) -> RangeIter<'_, T> {
        let cu = cu_here(CuKind::Range, std::panic::Location::caller());
        RangeIter { ch: self, cu }
    }

    /// Number of values currently buffered.
    pub fn len(&self) -> usize {
        self.core.st.lock().buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's buffer capacity.
    pub fn cap(&self) -> usize {
        self.core.cap
    }

    /// Has the channel been closed?
    pub fn is_closed(&self) -> bool {
        self.core.st.lock().closed
    }

    /// The channel's traced resource id.
    pub fn id(&self) -> RId {
        self.core.id
    }

    pub(crate) fn core(&self) -> &Arc<ChanCore<T>> {
        &self.core
    }
}

impl<T: Send + 'static> ChanCore<T> {
    /// After taking a value out of a full buffer, move a blocked sender's
    /// value in (preserving FIFO order) and wake it.
    fn refill_from_sender(&self, ctx: &Ctx, st: &mut ChanSt<T>, cu: &goat_model::Cu) {
        if st.buf.len() < self.cap {
            if let Some(mut sw) = st.pop_valid_sender() {
                let v = sw.val.take().expect("blocked sender always holds a value");
                st.buf.push_back(v);
                sw.slot.put(SendOutcome::Sent);
                let mut s = ctx.rt.state.lock();
                s.wake(sw.g, ctx.gid, Some(*cu));
            }
        }
    }

    pub(crate) fn send_impl(self: &Arc<Self>, ctx: &Ctx, v: T, cu: goat_model::Cu) {
        let mut st = self.st.lock();
        if st.closed {
            drop(st);
            gopanic("send on closed channel");
        }
        if let Some(rw) = st.pop_valid_recver() {
            rw.slot.put(RecvOutcome::Val(v));
            drop(st);
            ctx.rt.state.lock().wake(rw.g, ctx.gid, Some(cu));
            ctx.rt.tb.push(ctx.gid, EventKind::ChSend { ch: self.id }, Some(cu));
            return;
        }
        if st.buf.len() < self.cap {
            st.buf.push_back(v);
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::ChSend { ch: self.id }, Some(cu));
            return;
        }
        // Block until a receiver takes the value (or the channel closes).
        let slot = OpSlot::new();
        st.senders.push_back(SendWaiter {
            g: ctx.gid,
            val: Some(v),
            sel: None,
            slot: Arc::clone(&slot),
        });
        drop(st);
        block_current(ctx, BlockReason::Send, None, Some(cu));
        match slot.take() {
            Some(SendOutcome::Sent) => {
                ctx.rt.tb.push(ctx.gid, EventKind::ChSend { ch: self.id }, Some(cu));
            }
            Some(SendOutcome::Closed) => gopanic("send on closed channel"),
            None => unreachable!("blocked sender woken without outcome"),
        }
    }

    pub(crate) fn recv_impl(self: &Arc<Self>, ctx: &Ctx, cu: goat_model::Cu) -> Option<T> {
        let mut st = self.st.lock();
        if let Some(v) = st.buf.pop_front() {
            self.refill_from_sender(ctx, &mut st, &cu);
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: self.id, closed: false }, Some(cu));
            return Some(v);
        }
        if let Some(mut sw) = st.pop_valid_sender() {
            let v = sw.val.take().expect("blocked sender always holds a value");
            sw.slot.put(SendOutcome::Sent);
            drop(st);
            ctx.rt.state.lock().wake(sw.g, ctx.gid, Some(cu));
            ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: self.id, closed: false }, Some(cu));
            return Some(v);
        }
        if st.closed {
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: self.id, closed: true }, Some(cu));
            return None;
        }
        let slot = OpSlot::new();
        st.recvers.push_back(RecvWaiter { g: ctx.gid, sel: None, slot: Arc::clone(&slot) });
        drop(st);
        block_current(ctx, BlockReason::Recv, None, Some(cu));
        match slot.take() {
            Some(RecvOutcome::Val(v)) => {
                ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: self.id, closed: false }, Some(cu));
                Some(v)
            }
            Some(RecvOutcome::Closed) => {
                ctx.rt.tb.push(ctx.gid, EventKind::ChRecv { ch: self.id, closed: true }, Some(cu));
                None
            }
            None => unreachable!("blocked receiver woken without outcome"),
        }
    }

    // ---- select support -------------------------------------------------

    /// Is a receive case on this channel ready to fire without blocking?
    pub(crate) fn sel_recv_ready(&self) -> bool {
        let st = self.st.lock();
        !st.buf.is_empty() || st.has_valid_sender() || st.closed
    }

    /// Is a send case ready? (A closed channel counts as "ready": firing
    /// the case panics, exactly like Go.)
    pub(crate) fn sel_send_ready(&self) -> bool {
        let st = self.st.lock();
        st.closed || st.buf.len() < self.cap || st.has_valid_recver()
    }

    /// Execute a ready receive case; `None` if it raced and is no longer
    /// ready. Emits `GoUnblock` for a consumed blocked sender; the
    /// `SelectEnd` event is the operation's trace record.
    pub(crate) fn sel_try_recv(&self, ctx: &Ctx, cu: &goat_model::Cu) -> Option<Option<T>> {
        let mut st = self.st.lock();
        if let Some(v) = st.buf.pop_front() {
            // A blocked sender may slide into the freed buffer slot.
            if st.buf.len() < self.cap {
                if let Some(mut sw) = st.pop_valid_sender() {
                    let v2 = sw.val.take().expect("sender holds value");
                    st.buf.push_back(v2);
                    sw.slot.put(SendOutcome::Sent);
                    let mut s = ctx.rt.state.lock();
                    s.wake(sw.g, ctx.gid, Some(*cu));
                }
            }
            return Some(Some(v));
        }
        if let Some(mut sw) = st.pop_valid_sender() {
            let v = sw.val.take().expect("sender holds value");
            sw.slot.put(SendOutcome::Sent);
            drop(st);
            let mut s = ctx.rt.state.lock();
            s.wake(sw.g, ctx.gid, Some(*cu));
            return Some(Some(v));
        }
        if st.closed {
            return Some(None);
        }
        None
    }

    /// Execute a ready send case; gives the value back if no longer ready.
    ///
    /// # Panics
    /// Go panics when a select send case fires on a closed channel.
    pub(crate) fn sel_try_send(&self, ctx: &Ctx, v: T, cu: &goat_model::Cu) -> Result<(), T> {
        let mut st = self.st.lock();
        if st.closed {
            drop(st);
            gopanic("send on closed channel");
        }
        if let Some(rw) = st.pop_valid_recver() {
            rw.slot.put(RecvOutcome::Val(v));
            drop(st);
            let mut s = ctx.rt.state.lock();
            s.wake(rw.g, ctx.gid, Some(*cu));
            return Ok(());
        }
        if st.buf.len() < self.cap {
            st.buf.push_back(v);
            return Ok(());
        }
        Err(v)
    }

    /// Register a blocked select receive case.
    pub(crate) fn sel_register_recv(
        &self,
        g: Gid,
        tok: &Arc<SelToken>,
        idx: usize,
    ) -> Arc<OpSlot<RecvOutcome<T>>> {
        let slot = OpSlot::new();
        self.st.lock().recvers.push_back(RecvWaiter {
            g,
            sel: Some((Arc::clone(tok), idx)),
            slot: Arc::clone(&slot),
        });
        slot
    }

    /// Register a blocked select send case (the value is committed now).
    pub(crate) fn sel_register_send(
        &self,
        g: Gid,
        tok: &Arc<SelToken>,
        idx: usize,
        v: T,
    ) -> Arc<OpSlot<SendOutcome>> {
        let slot = OpSlot::new();
        self.st.lock().senders.push_back(SendWaiter {
            g,
            val: Some(v),
            sel: Some((Arc::clone(tok), idx)),
            slot: Arc::clone(&slot),
        });
        slot
    }

    /// Remove every registration belonging to `tok` (losing select cases
    /// are cleaned up eagerly so queues do not grow in loops).
    pub(crate) fn sel_unregister(&self, tok: &Arc<SelToken>) {
        let mut st = self.st.lock();
        st.senders.retain(|w| match &w.sel {
            Some((t, _)) => !Arc::ptr_eq(t, tok),
            None => true,
        });
        st.recvers.retain(|w| match &w.sel {
            Some((t, _)) => !Arc::ptr_eq(t, tok),
            None => true,
        });
    }

    /// Close driven by a timer/context (idempotent, no panic, attributed
    /// to the runtime pseudo-goroutine).
    pub(crate) fn close_internal(&self, s: &mut Sched) {
        let mut st = self.st.lock();
        if st.closed {
            return;
        }
        st.closed = true;
        let mut woken: Vec<Gid> = Vec::new();
        while let Some(rw) = st.pop_valid_recver() {
            rw.slot.put(RecvOutcome::Closed);
            woken.push(rw.g);
        }
        while let Some(sw) = st.pop_valid_sender() {
            sw.slot.put(SendOutcome::Closed);
            woken.push(sw.g);
        }
        drop(st);
        for g in woken {
            s.wake(g, Gid::RUNTIME, None);
        }
        s.emit(Gid::RUNTIME, EventKind::ChClose { ch: self.id }, None);
    }
}

/// Timer target that delivers one `()` into the channel (used by
/// [`crate::time::after`] and by tickers).
impl TimerTarget for ChanCore<()> {
    fn fire(&self, s: &mut Sched) {
        ChanCore::fire(self, s)
    }
}

impl ChanCore<()> {
    /// Deliver one `()` from scheduler context: wake a waiting receiver
    /// or buffer the value; drop it if the buffer is full or the channel
    /// closed.
    pub(crate) fn fire(&self, s: &mut Sched) {
        let mut st = self.st.lock();
        if st.closed {
            return;
        }
        if let Some(rw) = st.pop_valid_recver() {
            rw.slot.put(RecvOutcome::Val(()));
            let g = rw.g;
            drop(st);
            s.wake(g, Gid::RUNTIME, None);
            return;
        }
        if st.buf.len() < self.cap {
            st.buf.push_back(());
        }
    }
}

/// Iterator returned by [`Chan::range`].
pub struct RangeIter<'a, T> {
    ch: &'a Chan<T>,
    cu: goat_model::Cu,
}

impl<'a, T: Send + 'static> Iterator for RangeIter<'a, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let ctx = current();
        op_enter(&ctx, CuKind::Range, &self.cu);
        self.ch.core.recv_impl(&ctx, self.cu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, RunOutcome};
    use crate::rt::{go, go_named, gosched, Runtime};

    fn cfg(seed: u64) -> Config {
        Config::new(seed).with_native_preempt_prob(0.0)
    }

    #[test]
    fn unbuffered_rendezvous() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            let tx = ch.clone();
            go(move || {
                tx.send(1);
                tx.send(2);
            });
            assert_eq!(ch.recv(), Some(1));
            assert_eq!(ch.recv(), Some(2));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn buffered_does_not_block_until_full() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(2);
            ch.send(1);
            ch.send(2); // fits in buffer, no receiver needed
            assert_eq!(ch.len(), 2);
            assert_eq!(ch.recv(), Some(1));
            assert_eq!(ch.recv(), Some(2));
        });
        assert!(r.clean());
    }

    #[test]
    fn buffered_send_blocks_when_full_and_fifo_preserved() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(1);
            let tx = ch.clone();
            ch.send(1);
            go(move || tx.send(2)); // blocks: buffer full
            gosched(); // let the sender block
            assert_eq!(ch.recv(), Some(1));
            assert_eq!(ch.recv(), Some(2));
        });
        assert!(r.clean());
    }

    #[test]
    fn recv_blocks_until_send() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<&'static str> = Chan::new(0);
            let tx = ch.clone();
            go_named("producer", move || {
                gosched();
                tx.send("hello");
            });
            assert_eq!(ch.recv(), Some("hello"));
        });
        assert!(r.clean());
    }

    #[test]
    fn close_drains_then_none() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(4);
            ch.send(1);
            ch.send(2);
            ch.close();
            assert_eq!(ch.recv(), Some(1));
            assert_eq!(ch.recv(), Some(2));
            assert_eq!(ch.recv(), None);
            assert_eq!(ch.recv(), None); // stays closed
        });
        assert!(r.clean());
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            let cl = ch.clone();
            go(move || cl.close());
            assert_eq!(ch.recv(), None);
        });
        assert!(r.clean());
    }

    #[test]
    fn send_on_closed_channel_panics() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(1);
            ch.close();
            ch.send(1);
        });
        match r.outcome {
            RunOutcome::Panicked { ref msg, .. } => assert!(msg.contains("closed"), "{msg}"),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn close_of_closed_channel_panics() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            ch.close();
            ch.close();
        });
        assert!(matches!(r.outcome, RunOutcome::Panicked { .. }));
    }

    #[test]
    fn blocked_sender_panics_when_channel_closes_under_it() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            let cl = ch.clone();
            go(move || cl.close());
            ch.send(9); // blocks, then the closer runs
        });
        match r.outcome {
            RunOutcome::Panicked { ref msg, .. } => assert!(msg.contains("closed")),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn send_with_no_receiver_deadlocks_globally() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            ch.send(1); // nobody will ever receive
        });
        assert!(matches!(r.outcome, RunOutcome::GlobalDeadlock { .. }), "{:?}", r.outcome);
    }

    #[test]
    fn try_send_try_recv() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(1);
            assert!(ch.try_send(1).is_ok());
            assert_eq!(ch.try_send(2), Err(2));
            assert_eq!(ch.try_recv(), Some(Some(1)));
            assert_eq!(ch.try_recv(), None);
            ch.close();
            assert_eq!(ch.try_recv(), Some(None));
        });
        assert!(r.clean());
    }

    #[test]
    fn range_iterates_until_close() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            let tx = ch.clone();
            go(move || {
                for i in 0..5 {
                    tx.send(i);
                }
                tx.close();
            });
            let got: Vec<u32> = ch.range().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
        assert!(r.clean());
    }

    #[test]
    fn fifo_ordering_of_values() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(3);
            for i in 0..3 {
                ch.send(i);
            }
            for i in 0..3 {
                assert_eq!(ch.recv(), Some(i));
            }
        });
        assert!(r.clean());
    }

    #[test]
    fn multiple_receivers_each_get_one_value() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(0);
            let results: Chan<u32> = Chan::new(3);
            for _ in 0..3 {
                let rx = ch.clone();
                let out = results.clone();
                go(move || {
                    let v = rx.recv().expect("value");
                    out.send(v);
                });
            }
            gosched();
            for i in 10..13 {
                ch.send(i);
            }
            let mut got: Vec<u32> = (0..3).map(|_| results.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![10, 11, 12]);
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn chan_metadata() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u8> = Chan::new(2);
            assert_eq!(ch.cap(), 2);
            assert!(ch.is_empty());
            assert!(!ch.is_closed());
            ch.send(1);
            assert_eq!(ch.len(), 1);
            ch.close();
            assert!(ch.is_closed());
        });
        assert!(r.clean());
    }

    #[test]
    fn trace_records_channel_events() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u32> = Chan::new(1);
            ch.send(1);
            ch.recv();
            ch.close();
        });
        let ect = r.ect.unwrap();
        let kinds: Vec<&str> = ect.iter().map(|e| e.kind.mnemonic()).collect();
        assert!(kinds.contains(&"ChMake"));
        assert!(kinds.contains(&"ChSend"));
        assert!(kinds.contains(&"ChRecv"));
        assert!(kinds.contains(&"ChClose"));
        // CU lines are attached to channel ops
        let send_ev = ect.iter().find(|e| e.kind.mnemonic() == "ChSend").unwrap();
        assert!(send_ev.cu.as_ref().unwrap().file.contains("chan.rs"));
    }
}
