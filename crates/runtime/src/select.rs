//! Go's `select` statement as a builder.
//!
//! A select waits on multiple channel operations; when several cases are
//! ready the runtime picks one **pseudo-randomly** (from the scheduler's
//! seeded RNG, so runs replay); when none is ready the goroutine blocks
//! unless a `default` case makes the select non-blocking — the behaviour
//! §II-B identifies as a major source of interleaving-space blow-up.
//!
//! ```
//! use goat_runtime::{Runtime, Config, go, Chan, Select};
//! let r = Runtime::run(Config::new(0), || {
//!     let data: Chan<u32> = Chan::new(1);
//!     let quit: Chan<()> = Chan::new(0);
//!     data.send(7);
//!     let got = Select::new()
//!         .recv(&data, |v| v)
//!         .recv(&quit, |_| None)
//!         .run();
//!     assert_eq!(got, Some(7));
//! });
//! assert!(r.clean());
//! ```

use crate::chan::{Chan, OpSlot, RecvOutcome, SendOutcome};
use crate::rt::{block_current, cu_here, current, gopanic, op_enter, Ctx, SelToken};
use goat_model::{Cu, CuKind};
use goat_trace::{BlockReason, EventKind, RId, SelCaseFlavor};
use std::sync::Arc;

/// One channel case of a select (internal, type-erased).
trait SelCase<R> {
    fn flavor(&self) -> SelCaseFlavor;
    fn ch_id(&self) -> RId;
    /// Non-committal readiness poll.
    fn ready(&self) -> bool;
    /// Fire the case now (must be ready); `None` if it raced with a timer
    /// delivery and is no longer ready.
    fn execute(&mut self, ctx: &Ctx, cu: &Cu) -> Option<R>;
    /// Enqueue a registration on the case's channel.
    fn register(&mut self, ctx: &Ctx, tok: &Arc<SelToken>, idx: usize);
    /// Remove this select's registrations from the case's channel.
    fn unregister(&mut self, tok: &Arc<SelToken>);
    /// Finish after this case won while the select was blocked.
    fn complete(&mut self, ctx: &Ctx) -> R;
}

struct RecvCase<'a, T, R> {
    ch: &'a Chan<T>,
    f: Option<Box<dyn FnOnce(Option<T>) -> R + 'a>>,
    slot: Option<Arc<OpSlot<RecvOutcome<T>>>>,
}

impl<'a, T: Send + 'static, R> SelCase<R> for RecvCase<'a, T, R> {
    fn flavor(&self) -> SelCaseFlavor {
        SelCaseFlavor::Recv
    }

    fn ch_id(&self) -> RId {
        self.ch.id()
    }

    fn ready(&self) -> bool {
        self.ch.core().sel_recv_ready()
    }

    fn execute(&mut self, ctx: &Ctx, cu: &Cu) -> Option<R> {
        let got = self.ch.core().sel_try_recv(ctx, cu)?;
        let f = self.f.take().expect("select case executed twice");
        Some(f(got))
    }

    fn register(&mut self, ctx: &Ctx, tok: &Arc<SelToken>, idx: usize) {
        self.slot = Some(self.ch.core().sel_register_recv(ctx.gid, tok, idx));
    }

    fn unregister(&mut self, tok: &Arc<SelToken>) {
        self.ch.core().sel_unregister(tok);
    }

    fn complete(&mut self, _ctx: &Ctx) -> R {
        let slot = self.slot.take().expect("winning case has a slot");
        let f = self.f.take().expect("select case completed twice");
        match slot.take() {
            Some(RecvOutcome::Val(v)) => f(Some(v)),
            Some(RecvOutcome::Closed) => f(None),
            None => unreachable!("committed recv case without outcome"),
        }
    }
}

struct SendCase<'a, T, R> {
    ch: &'a Chan<T>,
    val: Option<T>,
    f: Option<Box<dyn FnOnce() -> R + 'a>>,
    slot: Option<Arc<OpSlot<SendOutcome>>>,
}

impl<'a, T: Send + 'static, R> SelCase<R> for SendCase<'a, T, R> {
    fn flavor(&self) -> SelCaseFlavor {
        SelCaseFlavor::Send
    }

    fn ch_id(&self) -> RId {
        self.ch.id()
    }

    fn ready(&self) -> bool {
        self.ch.core().sel_send_ready()
    }

    fn execute(&mut self, ctx: &Ctx, cu: &Cu) -> Option<R> {
        let v = self.val.take().expect("select send case executed twice");
        match self.ch.core().sel_try_send(ctx, v, cu) {
            Ok(()) => {
                let f = self.f.take().expect("closure consumed twice");
                Some(f())
            }
            Err(v) => {
                self.val = Some(v);
                None
            }
        }
    }

    fn register(&mut self, ctx: &Ctx, tok: &Arc<SelToken>, idx: usize) {
        let v = self.val.take().expect("send case registered twice");
        self.slot = Some(self.ch.core().sel_register_send(ctx.gid, tok, idx, v));
    }

    fn unregister(&mut self, tok: &Arc<SelToken>) {
        self.ch.core().sel_unregister(tok);
    }

    fn complete(&mut self, _ctx: &Ctx) -> R {
        let slot = self.slot.take().expect("winning case has a slot");
        match slot.take() {
            Some(SendOutcome::Sent) => {
                let f = self.f.take().expect("closure consumed twice");
                f()
            }
            Some(SendOutcome::Closed) => gopanic("send on closed channel"),
            None => unreachable!("committed send case without outcome"),
        }
    }
}

/// Builder for a select statement. Construct with [`Select::new`] (the
/// call site becomes the select's CU), add cases, then [`Select::run`].
#[must_use = "a Select does nothing until .run() is called"]
pub struct Select<'a, R> {
    cases: Vec<Box<dyn SelCase<R> + 'a>>,
    default_case: Option<Box<dyn FnOnce() -> R + 'a>>,
    cu: Cu,
}

impl<'a, R: 'a> Select<'a, R> {
    /// Start building a select; the caller's location is recorded as the
    /// select's CU.
    #[track_caller]
    #[allow(clippy::new_without_default)]
    pub fn new() -> Select<'a, R> {
        Select {
            cases: Vec::new(),
            default_case: None,
            cu: cu_here(CuKind::Select, std::panic::Location::caller()),
        }
    }

    /// Add a receive case; `f` gets `Some(v)` for a value or `None` when
    /// the channel is closed.
    pub fn recv<T: Send + 'static>(
        mut self,
        ch: &'a Chan<T>,
        f: impl FnOnce(Option<T>) -> R + 'a,
    ) -> Self {
        self.cases.push(Box::new(RecvCase { ch, f: Some(Box::new(f)), slot: None }));
        self
    }

    /// Add a send case delivering `v`; `f` runs after the send fires.
    pub fn send<T: Send + 'static>(
        mut self,
        ch: &'a Chan<T>,
        v: T,
        f: impl FnOnce() -> R + 'a,
    ) -> Self {
        self.cases.push(Box::new(SendCase { ch, val: Some(v), f: Some(Box::new(f)), slot: None }));
        self
    }

    /// Add a default case, making the select non-blocking.
    ///
    /// # Panics
    /// Panics if a default case was already added.
    pub fn default(mut self, f: impl FnOnce() -> R + 'a) -> Self {
        assert!(self.default_case.is_none(), "select: multiple default cases");
        self.default_case = Some(Box::new(f));
        self
    }

    /// Run the select: fire a pseudo-random ready case, the default when
    /// none is ready, or block until a case becomes available.
    ///
    /// # Panics
    /// Panics if the select has no cases at all (`select {}` blocks
    /// forever in Go; here that is a programming error), or if a fired
    /// send case hits a closed channel.
    pub fn run(mut self) -> R {
        assert!(!self.cases.is_empty() || self.default_case.is_some(), "select with no cases");
        let ctx = current();
        let cu = self.cu;
        op_enter(&ctx, CuKind::Select, &cu);
        {
            let descs: Vec<(SelCaseFlavor, Option<RId>)> =
                self.cases.iter().map(|c| (c.flavor(), Some(c.ch_id()))).collect();
            ctx.rt.tb.push(
                ctx.gid,
                EventKind::SelectBegin { cases: descs, has_default: self.default_case.is_some() },
                Some(cu),
            );
        }
        loop {
            let ready: Vec<usize> =
                (0..self.cases.len()).filter(|&i| self.cases[i].ready()).collect();
            if !ready.is_empty() {
                let pick = {
                    let mut s = ctx.rt.state.lock();
                    s.choose(ready.len())
                };
                let idx = ready[pick];
                if let Some(r) = self.cases[idx].execute(&ctx, &cu) {
                    self.emit_end(&ctx, idx);
                    return r;
                }
                // Raced with a timer delivery; re-poll.
                continue;
            }
            if let Some(d) = self.default_case.take() {
                ctx.rt.tb.push(
                    ctx.gid,
                    EventKind::SelectEnd {
                        chosen: usize::MAX,
                        flavor: SelCaseFlavor::Default,
                        ch: None,
                    },
                    Some(cu),
                );
                return d();
            }
            // Block on all cases at once.
            let tok = SelToken::new();
            for (i, c) in self.cases.iter_mut().enumerate() {
                c.register(&ctx, &tok, i);
            }
            block_current(&ctx, BlockReason::Select, None, Some(cu));
            let winner = tok.winner().expect("select woken without a committed case");
            for (i, c) in self.cases.iter_mut().enumerate() {
                if i != winner {
                    c.unregister(&tok);
                }
            }
            let r = self.cases[winner].complete(&ctx);
            self.emit_end(&ctx, winner);
            return r;
        }
    }

    fn emit_end(&self, ctx: &Ctx, idx: usize) {
        ctx.rt.tb.push(
            ctx.gid,
            EventKind::SelectEnd {
                chosen: idx,
                flavor: self.cases[idx].flavor(),
                ch: Some(self.cases[idx].ch_id()),
            },
            Some(self.cu),
        );
    }
}

impl<'a, R> std::fmt::Debug for Select<'a, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Select")
            .field("cases", &self.cases.len())
            .field("has_default", &self.default_case.is_some())
            .field("cu", &self.cu)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, RunOutcome};
    use crate::rt::{go, gosched, Runtime};

    fn cfg(seed: u64) -> Config {
        Config::new(seed).with_native_preempt_prob(0.0)
    }

    #[test]
    fn immediate_ready_recv_case_fires() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(1);
            let b: Chan<u32> = Chan::new(1);
            a.send(5);
            let got = Select::new().recv(&a, |v| v).recv(&b, |v| v).run();
            assert_eq!(got, Some(5));
        });
        assert!(r.clean());
    }

    #[test]
    fn default_fires_when_nothing_ready() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let got = Select::new().recv(&a, |_| 1).default(|| 2).run();
            assert_eq!(got, 2);
        });
        assert!(r.clean());
    }

    #[test]
    fn blocked_select_woken_by_sender() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let b: Chan<u32> = Chan::new(0);
            let tx = b.clone();
            go(move || tx.send(42));
            let got = Select::new().recv(&a, |v| v).recv(&b, |v| v).run();
            assert_eq!(got, Some(42));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn blocked_select_woken_by_close() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let cl = a.clone();
            go(move || cl.close());
            let got = Select::new().recv(&a, |v| v.is_none()).run();
            assert!(got);
        });
        assert!(r.clean());
    }

    #[test]
    fn send_case_delivers_to_blocked_receiver() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let out: Chan<u32> = Chan::new(1);
            let rx = a.clone();
            let o = out.clone();
            go(move || {
                let v = rx.recv().unwrap();
                o.send(v);
            });
            gosched(); // let the receiver block
            Select::new().send(&a, 9, || ()).run();
            assert_eq!(out.recv(), Some(9));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn blocked_send_case_completes_when_receiver_arrives() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let rx = a.clone();
            go(move || {
                gosched();
                assert_eq!(rx.recv(), Some(3));
            });
            let done = Select::new().send(&a, 3, || true).run();
            assert!(done);
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn select_choice_is_seed_deterministic_and_varies() {
        let outcome_for = |seed: u64| {
            let result = std::sync::Arc::new(std::sync::Mutex::new(0usize));
            let result2 = std::sync::Arc::clone(&result);
            let r = Runtime::run(cfg(seed), move || {
                let a: Chan<u32> = Chan::new(1);
                let b: Chan<u32> = Chan::new(1);
                a.send(1);
                b.send(2);
                let chosen = Select::new().recv(&a, |_| 0usize).recv(&b, |_| 1usize).run();
                *result2.lock().unwrap() = chosen;
            });
            assert!(r.clean());
            let chosen = *result.lock().unwrap();
            chosen
        };
        let picks: Vec<usize> = (0..16).map(outcome_for).collect();
        // deterministic per seed
        assert_eq!(outcome_for(3), outcome_for(3));
        // both cases get picked across seeds (pseudo-random choice)
        assert!(picks.contains(&0) && picks.contains(&1), "{picks:?}");
    }

    #[test]
    fn select_on_two_empty_channels_deadlocks() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let b: Chan<u32> = Chan::new(0);
            Select::new().recv(&a, |_| ()).recv(&b, |_| ()).run();
        });
        assert!(matches!(r.outcome, RunOutcome::GlobalDeadlock { .. }));
    }

    #[test]
    fn losing_registrations_are_cleaned_up() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            let b: Chan<u32> = Chan::new(0);
            let tx = a.clone();
            go(move || tx.send(1));
            for _ in 0..10 {
                let got = Select::new().recv(&a, |v| v).recv(&b, |v| v).run();
                assert_eq!(got, Some(1));
                let tx = a.clone();
                go(move || tx.send(1));
            }
            let _ = a.recv();
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn send_case_on_closed_channel_panics() {
        let r = Runtime::run(cfg(0), || {
            let a: Chan<u32> = Chan::new(0);
            a.close();
            Select::new().send(&a, 1, || ()).run();
        });
        assert!(matches!(r.outcome, RunOutcome::Panicked { .. }));
    }

    #[test]
    fn nested_select_loop_with_default_is_traced() {
        let r = Runtime::run(cfg(0), || {
            let status: Chan<u32> = Chan::new(0);
            let tx = status.clone();
            go(move || {
                gosched();
                tx.send(1);
            });
            let mut spins = 0u32;
            loop {
                let done = Select::new().recv(&status, |v| v.is_some()).default(|| false).run();
                if done {
                    break;
                }
                spins += 1;
                gosched();
                if spins > 100 {
                    panic!("never received");
                }
            }
        });
        assert!(r.clean(), "{:?}", r.outcome);
        let ect = r.ect.unwrap();
        let begins = ect.iter().filter(|e| e.kind.mnemonic() == "SelectBegin").count();
        let ends = ect.iter().filter(|e| e.kind.mnemonic() == "SelectEnd").count();
        assert_eq!(begins, ends);
        assert!(begins >= 2, "looped select traced each iteration");
    }

    #[test]
    fn empty_select_is_rejected() {
        let r = Runtime::run(cfg(0), || {
            let _: u32 = Select::new().run();
        });
        match r.outcome {
            RunOutcome::Panicked { ref msg, .. } => {
                assert!(msg.contains("select with no cases"), "{msg}")
            }
            other => panic!("expected panic, got {other:?}"),
        }
    }
}
