//! Runtime configuration and run results.

use crate::strategy::StrategyKind;
use goat_trace::{Ect, Gid, VTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One nondeterministic choice the scheduler made, in program order.
///
/// Recording every such decision makes a run **schedule-forcing
/// replayable** independently of the RNG: feed the log back via
/// [`SchedPolicy::Replay`] and the same interleaving re-executes (the
/// paper's "replaying the program's ECT" detection mode).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Which goroutine received the run token at a handoff.
    Pick(Gid),
    /// Which ready case a select committed to.
    SelectChoice(usize),
    /// Whether a yield handler fired in front of a CU.
    YieldAt(bool),
}

/// A recorded schedule: the scheduler's full decision log for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayLog {
    /// Decisions in the order they were taken.
    pub decisions: Vec<Decision>,
}

impl ReplayLog {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

/// The scheduling policy driving nondeterministic choices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Go-like native scheduling: FIFO global run queue with
    /// probability-ε preemption noise (the default; §III-A).
    #[default]
    Native,
    /// Uniform random choice among runnable goroutines at every handoff
    /// — the paper's future-work "take full control over the scheduler"
    /// exploration mode, useful as an ablation against yield injection.
    UniformRandom,
    /// Schedule-forcing replay of a recorded decision log. When the
    /// program diverges from the log (e.g. it changed), the scheduler
    /// falls back to native policy and flags
    /// [`RunResult::replay_diverged`].
    Replay(ReplayLog),
}

/// Configuration of one program execution under the GoAT runtime.
///
/// The two knobs at the heart of the paper are [`Config::delay_bound`]
/// (the bound `D` on injected yields; `D = 0` is native execution) and
/// [`Config::seed`] (which makes every execution deterministic and
/// replayable).
///
/// ```
/// use goat_runtime::Config;
/// let cfg = Config::new(42).with_delay_bound(3).with_trace(true);
/// assert_eq!(cfg.delay_bound, 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// RNG seed; equal seeds give identical executions.
    pub seed: u64,
    /// Probability ε that the native scheduler deviates from FIFO at a
    /// scheduling point (models Go's preemption/multi-P nondeterminism).
    pub native_preempt_prob: f64,
    /// Bound `D` on the number of injected perturbation yields
    /// (paper §III-B.2). `0` disables perturbation entirely.
    pub delay_bound: u32,
    /// Probability that a yield handler in front of a CU actually yields
    /// (while budget remains).
    pub yield_prob: f64,
    /// Watchdog bound on scheduler steps; exceeding it aborts the run
    /// with [`RunOutcome::StepLimit`] (the paper's 30 s watchdog).
    pub max_steps: u64,
    /// Virtual nanoseconds added to the clock per scheduler step.
    pub time_step_ns: u64,
    /// Whether to record an ECT.
    pub trace: bool,
    /// Hard cap on recorded events (guards memory on runaway programs).
    pub max_trace_events: usize,
    /// Scheduling policy (native, uniform-random exploration, or replay).
    pub policy: SchedPolicy,
    /// Pluggable scheduling strategy (see [`StrategyKind`]). Defaults
    /// from the `GOAT_STRATEGY` environment variable (unset → native).
    /// [`SchedPolicy::UniformRandom`] overrides this to the random
    /// strategy for backwards compatibility; under
    /// [`SchedPolicy::Replay`] the strategy only drives the
    /// after-divergence fallback.
    pub strategy: StrategyKind,
    /// Run goroutines on the shared worker-thread pool instead of
    /// spawning a fresh OS thread per goroutine. Scheduling semantics
    /// and traces are identical either way; the pool only removes
    /// thread-creation cost. The pool's idle-retention size is set by
    /// the `GOAT_POOL_MAX_IDLE` environment variable.
    pub pool: bool,
    /// Wall-clock watchdog bound per run, in milliseconds (defaults from
    /// the `GOAT_ITER_TIMEOUT_MS` environment variable; `None` disables
    /// the watchdog). Complements [`Config::max_steps`], which cannot
    /// fire while a goroutine stalls *outside* the scheduler: at the
    /// soft deadline the driver requests a cooperative abort through the
    /// scheduler gate, and at the hard deadline (soft + grace) it
    /// abandons the run with [`RunOutcome::TimedOut`] even if no
    /// goroutine ever re-enters the runtime.
    pub iter_timeout_ms: Option<u64>,
    /// Token-handoff spin budget: rounds a goroutine polls for the run
    /// token (with exponentially growing [`std::hint::spin_loop`]
    /// batches) before parking on a condvar. `0` disables spinning —
    /// park-only, the pre-spin behaviour. Defaults from the `GOAT_SPIN`
    /// environment variable; unset, the default is 100 on multi-core
    /// hosts and 0 on single-CPU hosts (where a spin window can never
    /// overlap the granting thread). Scheduling decisions and traces
    /// are identical at every setting; only handoff latency changes.
    pub spin: u32,
}

/// The process-wide `GOAT_SPIN` default, read once.
///
/// When the variable is unset the default is host-aware: spinning for a
/// grant only ever succeeds while the *granting* thread runs on another
/// core, so on a single-CPU host every spin window is pure delay (the
/// spinner occupies the only core the granter needs) and the default
/// collapses to 0 (park immediately). An explicit `GOAT_SPIN` always
/// wins — useful for testing the spin path itself.
pub(crate) fn default_spin() -> u32 {
    use std::sync::OnceLock;
    static SPIN: OnceLock<u32> = OnceLock::new();
    *SPIN.get_or_init(|| {
        std::env::var("GOAT_SPIN").ok().and_then(|v| v.parse::<u32>().ok()).unwrap_or_else(|| {
            match std::thread::available_parallelism() {
                Ok(n) if n.get() > 1 => 100,
                _ => 0,
            }
        })
    })
}

impl Config {
    /// A configuration with the given seed and default knobs.
    pub fn new(seed: u64) -> Self {
        Config { seed, ..Self::default() }
    }

    /// Set the perturbation delay bound `D`.
    pub fn with_delay_bound(mut self, d: u32) -> Self {
        self.delay_bound = d;
        self
    }

    /// Set the per-CU yield probability.
    pub fn with_yield_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.yield_prob = p;
        self
    }

    /// Set the native preemption-noise probability ε.
    pub fn with_native_preempt_prob(mut self, eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "probability must be in [0,1]");
        self.native_preempt_prob = eps;
        self
    }

    /// Enable or disable ECT tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Set the watchdog step bound.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Set the scheduling policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Convenience: replay a recorded schedule.
    pub fn with_replay(self, log: ReplayLog) -> Self {
        self.with_policy(SchedPolicy::Replay(log))
    }

    /// Enable or disable the shared goroutine worker-thread pool.
    pub fn with_pool(mut self, on: bool) -> Self {
        self.pool = on;
        self
    }

    /// Set (or clear) the per-run wall-clock watchdog.
    pub fn with_iter_timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.iter_timeout_ms = ms.filter(|&ms| ms > 0);
        self
    }

    /// Set the token-handoff spin budget (0 = park only).
    pub fn with_spin(mut self, spin: u32) -> Self {
        self.spin = spin;
        self
    }

    /// Set the pluggable scheduling strategy.
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0,
            native_preempt_prob: 0.02,
            delay_bound: 0,
            yield_prob: 0.5,
            max_steps: 200_000,
            time_step_ns: 10_000,
            trace: true,
            max_trace_events: 1_000_000,
            policy: SchedPolicy::Native,
            strategy: StrategyKind::from_env(),
            pool: true,
            iter_timeout_ms: std::env::var("GOAT_ITER_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0),
            spin: default_spin(),
        }
    }
}

/// Which watchdog escalation stage ended a [`RunOutcome::TimedOut`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeoutPhase {
    /// The run blew its soft deadline but a goroutine still reached the
    /// scheduler gate, so the runtime unwound it cooperatively — clean
    /// teardown, threads reclaimed.
    Cooperative,
    /// No goroutine re-entered the runtime before the hard deadline; the
    /// run was abandoned with its host threads wedged (they are written
    /// off through the pool's abandoned-worker path).
    Wedged,
}

impl fmt::Display for TimeoutPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutPhase::Cooperative => write!(f, "cooperative"),
            TimeoutPhase::Wedged => write!(f, "wedged"),
        }
    }
}

/// Post-mortem of a worker process that died under process isolation.
///
/// Filled in by the orchestrator side of `GOAT_ISOLATE=proc` when a
/// sandboxed worker exits (or is killed) instead of answering a run
/// request; the payload travels inside [`RunOutcome::Crashed`] so the
/// campaign layer can report *why* the process died without sharing its
/// address space.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashForensics {
    /// Signal number that terminated the worker, when it died by signal.
    pub signal: Option<i32>,
    /// Exit code, when the worker exited (abnormally) on its own.
    pub exit_code: Option<i32>,
    /// Tail of the worker's stderr (last lines, truncated) — panics,
    /// abort messages, and sanitizer output land here.
    pub stderr_tail: String,
    /// Last iteration the worker acknowledged before dying (`None` when
    /// it died before acknowledging this run).
    pub last_ack_iter: Option<u64>,
    /// Orchestrator-side summary of the death ("killed by signal 6
    /// (SIGABRT)", "no heartbeat within 5000 ms", …).
    pub summary: String,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The main goroutine returned normally (leaked goroutines, if any,
    /// are discovered by offline analysis of the trace).
    Completed,
    /// No goroutine was runnable, no timer was pending, and main had not
    /// finished — the built-in detector's "all goroutines are asleep"
    /// condition.
    GlobalDeadlock {
        /// Goroutines blocked at the moment of detection.
        blocked: Vec<Gid>,
    },
    /// A goroutine panicked (e.g. send on closed channel).
    Panicked {
        /// The panicking goroutine.
        g: Gid,
        /// The panic message.
        msg: String,
    },
    /// The watchdog step bound was exceeded (livelock / infinite loop).
    StepLimit,
    /// The wall-clock watchdog fired ([`Config::iter_timeout_ms`]) —
    /// the paper's timeout flag for a suspected hang.
    TimedOut {
        /// Which escalation stage ended the run.
        phase: TimeoutPhase,
        /// Wall-clock milliseconds elapsed when the watchdog fired.
        elapsed_ms: u64,
    },
    /// The harness itself failed to host the run (worker checkout or
    /// thread spawn failed) — says nothing about the program under
    /// test. The campaign supervision layer retries these.
    InfraFailure {
        /// What broke.
        reason: String,
    },
    /// The sandboxed worker process hosting the run died (signal, abort,
    /// rlimit kill, or missed heartbeats) under `GOAT_ISOLATE=proc`.
    /// Unlike [`RunOutcome::InfraFailure`] this *is* attributed to the
    /// kernel under test: it feeds the crash streak and quarantine.
    Crashed {
        /// Post-mortem collected by the orchestrator.
        forensics: CrashForensics,
    },
}

impl RunOutcome {
    /// Did the run complete normally?
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::GlobalDeadlock { blocked } => {
                write!(f, "global deadlock ({} goroutines blocked)", blocked.len())
            }
            RunOutcome::Panicked { g, msg } => write!(f, "panic in {g}: {msg}"),
            RunOutcome::StepLimit => write!(f, "watchdog step limit exceeded"),
            RunOutcome::TimedOut { phase, elapsed_ms } => {
                write!(f, "wall-clock watchdog fired ({phase}, {elapsed_ms} ms)")
            }
            RunOutcome::InfraFailure { reason } => write!(f, "infra failure: {reason}"),
            RunOutcome::Crashed { forensics } => {
                write!(f, "worker crashed: {}", forensics.summary)
            }
        }
    }
}

/// Deterministic per-run scheduler counters.
///
/// Maintained as plain fields inside the scheduler (which is already
/// behind the run lock), so they cost one integer increment per event
/// regardless of whether telemetry export is enabled — the run result
/// always carries them, and campaign-level telemetry aggregates them
/// without touching the global registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCounters {
    /// Run-token handoffs (run-queue pops).
    pub picks: u64,
    /// Handoffs where the scheduler deviated from FIFO (uniform-random
    /// policy or native preemption noise ε).
    pub random_picks: u64,
    /// Goroutine block transitions (channel, lock, timer, …).
    pub blocks: u64,
    /// Goroutine unblock transitions (wakes).
    pub unblocks: u64,
    /// Preemption yields taken (injected perturbation + native ε noise).
    pub yields_preempt: u64,
    /// Program-requested `gosched()` yields.
    pub yields_gosched: u64,
    /// Timers fired.
    pub timer_fires: u64,
    /// Select-case choices made.
    pub select_choices: u64,
}

impl SchedCounters {
    /// Fold another run's counters into this accumulator (used by
    /// campaign-level telemetry totals).
    pub fn accumulate(&mut self, other: &SchedCounters) {
        self.picks += other.picks;
        self.random_picks += other.random_picks;
        self.blocks += other.blocks;
        self.unblocks += other.unblocks;
        self.yields_preempt += other.yields_preempt;
        self.yields_gosched += other.yields_gosched;
        self.timer_fires += other.timer_fires;
        self.select_choices += other.select_choices;
    }
}

/// Information about a goroutine still alive when the run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliveGoroutine {
    /// The goroutine.
    pub g: Gid,
    /// Its name.
    pub name: String,
    /// Human-readable description of what it was doing ("blocked: send",
    /// "runnable", …).
    pub state: String,
    /// True for runtime-internal goroutines.
    pub internal: bool,
}

/// The result of one execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The execution concurrency trace, when tracing was enabled.
    pub ect: Option<Ect>,
    /// Scheduler steps taken.
    pub steps: u64,
    /// Final virtual clock.
    pub vclock: VTime,
    /// Total goroutines created (including main, excluding internal).
    pub goroutines: u64,
    /// Perturbation yields actually injected.
    pub yields_injected: u32,
    /// PCT priority changes performed (0 under other strategies);
    /// bounded by the configured `depth − 1`.
    pub priority_changes: u32,
    /// Application goroutines that had not finished when the run ended —
    /// the runtime's ground truth, cross-checked against the offline
    /// ECT analysis in tests.
    pub alive_at_end: Vec<AliveGoroutine>,
    /// The scheduler's decision log: feed back via
    /// [`SchedPolicy::Replay`] to force the same interleaving.
    pub schedule: ReplayLog,
    /// True when a replay run diverged from its log and fell back to
    /// native scheduling.
    pub replay_diverged: bool,
    /// Deterministic scheduler counters for this run.
    pub sched: SchedCounters,
    /// Schedule fingerprint folded online while the trace was recorded
    /// (see [`goat_trace::schedule_fingerprint`]); equal fingerprints
    /// mean the run executed the same interleaving of the same
    /// operations. [`goat_trace::tracebuf::FP_SEED`] when tracing was
    /// disabled.
    pub fingerprint: u64,
    /// Crash forensics for a [`RunOutcome::Panicked`] run: the panic
    /// site plus (when `RUST_BACKTRACE` enables capture) a truncated
    /// backtrace. `None` for non-panicking runs.
    pub panic_detail: Option<String>,
}

impl RunResult {
    /// Did the program both complete and leak no goroutine? This is the
    /// runtime ground truth of the paper's "successful execution".
    pub fn clean(&self) -> bool {
        self.outcome.is_completed() && self.alive_at_end.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = Config::new(7)
            .with_delay_bound(2)
            .with_yield_prob(0.25)
            .with_native_preempt_prob(0.0)
            .with_trace(false)
            .with_max_steps(99);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.delay_bound, 2);
        assert_eq!(cfg.yield_prob, 0.25);
        assert_eq!(cfg.native_preempt_prob, 0.0);
        assert!(!cfg.trace);
        assert_eq!(cfg.max_steps, 99);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = Config::new(0).with_yield_prob(1.5);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        let gdl = RunOutcome::GlobalDeadlock { blocked: vec![Gid(2), Gid(3)] };
        assert!(gdl.to_string().contains("2 goroutines"));
        assert!(!RunOutcome::StepLimit.is_completed());
    }
}
