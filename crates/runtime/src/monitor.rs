//! Monitor hooks: how baseline detectors observe an execution.
//!
//! The paper compares GoAT against tools that *intercept* primitive
//! operations (LockDL wraps every mutex op; goleak inspects the stack at
//! the end of main). The runtime exposes the same observation points as a
//! trait so each baseline can be implemented faithfully without touching
//! the scheduler.

use crate::config::{AliveGoroutine, TimeoutPhase};
use goat_model::Cu;
use goat_trace::{Gid, RId};

/// Observation hooks invoked synchronously by the runtime.
///
/// Implementations must not call back into runtime primitives (they run
/// under scheduler locks); they should only update their own state.
#[allow(unused_variables)]
pub trait Monitor: Send + Sync {
    /// A goroutine is about to acquire `mu` (before blocking, if any).
    fn on_lock_attempt(&self, g: Gid, mu: RId, cu: &Cu) {}

    /// A goroutine acquired `mu`.
    fn on_lock_acquired(&self, g: Gid, mu: RId, cu: &Cu) {}

    /// A goroutine released `mu`.
    fn on_unlock(&self, g: Gid, mu: RId) {}

    /// The main goroutine returned; `alive` lists the application
    /// goroutines that had not finished at that point (goleak's view).
    fn on_main_end(&self, alive: &[AliveGoroutine]) {}

    /// Called once per scheduler step with the step count and virtual
    /// clock in nanoseconds (lets timeout-based detectors keep time).
    fn on_step(&self, steps: u64, vclock_ns: u64) {}

    /// The wall-clock watchdog ended the run (the paper's timeout flag
    /// for a suspected hang). `phase` says whether the abort was
    /// cooperative or the run was abandoned wedged.
    fn on_timeout(&self, phase: TimeoutPhase, elapsed_ms: u64) {}
}

/// A monitor that observes nothing (useful default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}
