//! Go's `sync` package: `Mutex`, `RWMutex`, `WaitGroup`, `Cond`.
//!
//! Semantics follow Go:
//!
//! * `Mutex` is **not reentrant** — re-locking from the holder blocks
//!   forever (the classic double-lock deadlock);
//! * a mutex locked by one goroutine may be unlocked by another;
//!   unlocking an unlocked mutex panics;
//! * `RWMutex` is write-preferring: a waiting writer blocks new readers
//!   (so recursive read-locking can deadlock, a real Go bug pattern);
//! * `WaitGroup.add` with a negative result panics; `wait` blocks until
//!   the counter reaches zero;
//! * `Cond.wait` atomically releases the associated mutex, blocks, and
//!   re-acquires it after being signalled — a missed signal blocks
//!   forever.
//!
//! Every operation is a traced CU; lock operations also drive the
//! [`crate::Monitor`] hooks the LockDL baseline relies on.

use crate::rt::{block_current, cu_here, current, gopanic, op_enter, Ctx};
use goat_model::{Cu, CuKind};
use goat_trace::{BlockReason, EventKind, Gid, RId};
use parking_lot::Mutex as PlMutex;
use std::collections::VecDeque;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

struct MuWaiter {
    g: Gid,
    cu: Cu,
}

struct MuSt {
    owner: Option<Gid>,
    owner_cu: Option<Cu>,
    waiters: VecDeque<MuWaiter>,
}

struct MuCore {
    id: RId,
    st: PlMutex<MuSt>,
}

/// A Go-style mutual-exclusion lock handle. Cloning shares the lock.
///
/// ```
/// use goat_runtime::{Runtime, Config, go, Mutex};
/// let r = Runtime::run(Config::new(0), || {
///     let mu = Mutex::new();
///     mu.lock();
///     // ... critical section ...
///     mu.unlock();
/// });
/// assert!(r.clean());
/// ```
#[derive(Clone)]
pub struct Mutex {
    core: Arc<MuCore>,
}

impl std::fmt::Debug for Mutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("id", &self.core.id).finish()
    }
}

impl Default for Mutex {
    fn default() -> Self {
        Self::new()
    }
}

impl Mutex {
    /// Create an unlocked mutex.
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn new() -> Mutex {
        let ctx = current();
        let id = ctx.rt.state.lock().alloc_rid();
        Mutex {
            core: Arc::new(MuCore {
                id,
                st: PlMutex::new(MuSt { owner: None, owner_cu: None, waiters: VecDeque::new() }),
            }),
        }
    }

    /// The traced resource id.
    pub fn id(&self) -> RId {
        self.core.id
    }

    /// Acquire the lock, blocking while another goroutine holds it.
    /// Re-locking from the holder deadlocks (Go semantics).
    #[track_caller]
    pub fn lock(&self) {
        let cu = cu_here(CuKind::Lock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Lock, &cu);
        self.lock_impl(&ctx, cu);
    }

    fn lock_impl(&self, ctx: &Ctx, cu: Cu) {
        // The token holder appends trace events and drives monitor hooks
        // without the scheduler lock (see `RtShared::tb`); only a wake
        // needs `Sched`.
        if let Some(m) = &ctx.rt.monitor {
            m.on_lock_attempt(ctx.gid, self.core.id, &cu);
        }
        let mut st = self.core.st.lock();
        if st.owner.is_none() {
            st.owner = Some(ctx.gid);
            st.owner_cu = Some(cu);
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::MuLock { mu: self.core.id }, Some(cu));
            if let Some(m) = &ctx.rt.monitor {
                m.on_lock_acquired(ctx.gid, self.core.id, &cu);
            }
            return;
        }
        let holder = (st.owner.expect("checked"), st.owner_cu);
        st.waiters.push_back(MuWaiter { g: ctx.gid, cu });
        drop(st);
        block_current(ctx, BlockReason::Sync, Some(holder), Some(cu));
        // Ownership was transferred to us by the unlocker.
        ctx.rt.tb.push(ctx.gid, EventKind::MuLock { mu: self.core.id }, Some(cu));
        if let Some(m) = &ctx.rt.monitor {
            m.on_lock_acquired(ctx.gid, self.core.id, &cu);
        }
    }

    /// Try to acquire without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> bool {
        let cu = cu_here(CuKind::Lock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Lock, &cu);
        let mut st = self.core.st.lock();
        if st.owner.is_some() {
            return false;
        }
        st.owner = Some(ctx.gid);
        st.owner_cu = Some(cu);
        drop(st);
        ctx.rt.tb.push(ctx.gid, EventKind::MuLock { mu: self.core.id }, Some(cu));
        if let Some(m) = &ctx.rt.monitor {
            m.on_lock_acquired(ctx.gid, self.core.id, &cu);
        }
        true
    }

    /// Release the lock, handing it to the longest-waiting goroutine.
    ///
    /// # Panics
    /// Panics if the mutex is not locked (Go's
    /// "sync: unlock of unlocked mutex").
    #[track_caller]
    pub fn unlock(&self) {
        let cu = cu_here(CuKind::Unlock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Unlock, &cu);
        self.unlock_impl(&ctx, cu);
    }

    fn unlock_impl(&self, ctx: &Ctx, cu: Cu) {
        let mut st = self.core.st.lock();
        if st.owner.is_none() {
            drop(st);
            gopanic("sync: unlock of unlocked mutex");
        }
        let woken = if let Some(w) = st.waiters.pop_front() {
            st.owner = Some(w.g);
            st.owner_cu = Some(w.cu);
            Some(w.g)
        } else {
            st.owner = None;
            st.owner_cu = None;
            None
        };
        drop(st);
        if let Some(g) = woken {
            // The only scheduler-lock acquisition on this path; the
            // uncontended unlock never touches `Sched` at all.
            ctx.rt.state.lock().wake(g, ctx.gid, Some(cu));
        }
        ctx.rt.tb.push(ctx.gid, EventKind::MuUnlock { mu: self.core.id }, Some(cu));
        if let Some(m) = &ctx.rt.monitor {
            m.on_unlock(ctx.gid, self.core.id);
        }
    }
}

// ---------------------------------------------------------------------
// RwLock (Go's RWMutex)
// ---------------------------------------------------------------------

struct RwSt {
    writer: Option<(Gid, Cu)>,
    readers: Vec<(Gid, Cu)>,
    wait_writers: VecDeque<MuWaiter>,
    wait_readers: VecDeque<MuWaiter>,
}

struct RwCore {
    id: RId,
    st: PlMutex<RwSt>,
}

/// Go's `sync.RWMutex`: many readers or one writer, write-preferring.
#[derive(Clone)]
pub struct RwLock {
    core: Arc<RwCore>,
}

impl std::fmt::Debug for RwLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").field("id", &self.core.id).finish()
    }
}

impl Default for RwLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RwLock {
    /// Create an unlocked rw-lock.
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn new() -> RwLock {
        let ctx = current();
        let id = ctx.rt.state.lock().alloc_rid();
        RwLock {
            core: Arc::new(RwCore {
                id,
                st: PlMutex::new(RwSt {
                    writer: None,
                    readers: Vec::new(),
                    wait_writers: VecDeque::new(),
                    wait_readers: VecDeque::new(),
                }),
            }),
        }
    }

    /// The traced resource id.
    pub fn id(&self) -> RId {
        self.core.id
    }

    /// Acquire the write lock.
    #[track_caller]
    pub fn lock(&self) {
        let cu = cu_here(CuKind::Lock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Lock, &cu);
        if let Some(m) = &ctx.rt.monitor {
            m.on_lock_attempt(ctx.gid, self.core.id, &cu);
        }
        let mut st = self.core.st.lock();
        if st.writer.is_none() && st.readers.is_empty() {
            st.writer = Some((ctx.gid, cu));
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::MuLock { mu: self.core.id }, Some(cu));
            if let Some(m) = &ctx.rt.monitor {
                m.on_lock_acquired(ctx.gid, self.core.id, &cu);
            }
            return;
        }
        let holder = st
            .writer
            .map(|(g, c)| (g, Some(c)))
            .or_else(|| st.readers.first().map(|(g, c)| (*g, Some(*c))));
        st.wait_writers.push_back(MuWaiter { g: ctx.gid, cu });
        drop(st);
        block_current(&ctx, BlockReason::Sync, holder, Some(cu));
        ctx.rt.tb.push(ctx.gid, EventKind::MuLock { mu: self.core.id }, Some(cu));
        if let Some(m) = &ctx.rt.monitor {
            m.on_lock_acquired(ctx.gid, self.core.id, &cu);
        }
    }

    /// Release the write lock.
    ///
    /// # Panics
    /// Panics if the write lock is not held.
    #[track_caller]
    pub fn unlock(&self) {
        let cu = cu_here(CuKind::Unlock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Unlock, &cu);
        let mut st = self.core.st.lock();
        if st.writer.is_none() {
            drop(st);
            gopanic("sync: Unlock of unlocked RWMutex");
        }
        st.writer = None;
        let mut woken: Vec<Gid> = Vec::new();
        self.grant(&mut st, &mut woken);
        drop(st);
        if !woken.is_empty() {
            let mut s = ctx.rt.state.lock();
            for g in woken {
                s.wake(g, ctx.gid, Some(cu));
            }
        }
        ctx.rt.tb.push(ctx.gid, EventKind::MuUnlock { mu: self.core.id }, Some(cu));
        if let Some(m) = &ctx.rt.monitor {
            m.on_unlock(ctx.gid, self.core.id);
        }
    }

    /// Acquire a read lock. Blocks while a writer holds the lock **or is
    /// waiting for it** (write preference).
    #[track_caller]
    pub fn rlock(&self) {
        let cu = cu_here(CuKind::Lock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Lock, &cu);
        let mut st = self.core.st.lock();
        if st.writer.is_none() && st.wait_writers.is_empty() {
            st.readers.push((ctx.gid, cu));
            drop(st);
            ctx.rt.tb.push(ctx.gid, EventKind::RwRLock { mu: self.core.id }, Some(cu));
            return;
        }
        let holder = st
            .writer
            .map(|(g, c)| (g, Some(c)))
            .or_else(|| st.wait_writers.front().map(|w| (w.g, Some(w.cu))));
        st.wait_readers.push_back(MuWaiter { g: ctx.gid, cu });
        drop(st);
        block_current(&ctx, BlockReason::Sync, holder, Some(cu));
        ctx.rt.tb.push(ctx.gid, EventKind::RwRLock { mu: self.core.id }, Some(cu));
    }

    /// Release a read lock.
    ///
    /// # Panics
    /// Panics if no read lock is held.
    #[track_caller]
    pub fn runlock(&self) {
        let cu = cu_here(CuKind::Unlock, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Unlock, &cu);
        let mut st = self.core.st.lock();
        // Go tracks a reader *count*; any goroutine may release a unit.
        if st.readers.pop().is_none() {
            drop(st);
            gopanic("sync: RUnlock of unlocked RWMutex");
        }
        let mut woken: Vec<Gid> = Vec::new();
        self.grant(&mut st, &mut woken);
        drop(st);
        if !woken.is_empty() {
            let mut s = ctx.rt.state.lock();
            for g in woken {
                s.wake(g, ctx.gid, Some(cu));
            }
        }
        ctx.rt.tb.push(ctx.gid, EventKind::RwRUnlock { mu: self.core.id }, Some(cu));
    }

    /// Grant the lock to waiters after a release: the next writer when
    /// the lock is free, otherwise all waiting readers.
    fn grant(&self, st: &mut RwSt, woken: &mut Vec<Gid>) {
        if st.writer.is_some() {
            return;
        }
        if st.readers.is_empty() {
            if let Some(w) = st.wait_writers.pop_front() {
                st.writer = Some((w.g, w.cu));
                woken.push(w.g);
                return;
            }
        }
        if st.wait_writers.is_empty() {
            while let Some(w) = st.wait_readers.pop_front() {
                st.readers.push((w.g, w.cu));
                woken.push(w.g);
            }
        }
    }
}

// ---------------------------------------------------------------------
// WaitGroup
// ---------------------------------------------------------------------

struct WgSt {
    count: i64,
    waiters: VecDeque<Gid>,
}

struct WgCore {
    id: RId,
    st: PlMutex<WgSt>,
}

/// Go's `sync.WaitGroup`. Cloning shares the group.
///
/// ```
/// use goat_runtime::{Runtime, Config, go, WaitGroup};
/// let r = Runtime::run(Config::new(0), || {
///     let wg = WaitGroup::new();
///     for _ in 0..3 {
///         wg.add(1);
///         let wg2 = wg.clone();
///         go(move || wg2.done());
///     }
///     wg.wait();
/// });
/// assert!(r.clean());
/// ```
#[derive(Clone)]
pub struct WaitGroup {
    core: Arc<WgCore>,
}

impl std::fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitGroup")
            .field("id", &self.core.id)
            .field("count", &self.core.st.lock().count)
            .finish()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    /// Create a wait group with counter zero.
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn new() -> WaitGroup {
        let ctx = current();
        let id = ctx.rt.state.lock().alloc_rid();
        WaitGroup {
            core: Arc::new(WgCore {
                id,
                st: PlMutex::new(WgSt { count: 0, waiters: VecDeque::new() }),
            }),
        }
    }

    /// Add `delta` to the counter, waking waiters when it reaches zero.
    ///
    /// # Panics
    /// Panics if the counter goes negative.
    #[track_caller]
    pub fn add(&self, delta: i64) {
        let cu = cu_here(CuKind::Add, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Add, &cu);
        self.add_impl(&ctx, delta, cu, false);
    }

    /// Decrement the counter by one (equivalent to `add(-1)`).
    ///
    /// # Panics
    /// Panics if the counter goes negative.
    #[track_caller]
    pub fn done(&self) {
        let cu = cu_here(CuKind::Done, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Done, &cu);
        self.add_impl(&ctx, -1, cu, true);
    }

    fn add_impl(&self, ctx: &Ctx, delta: i64, cu: Cu, is_done: bool) {
        let mut st = self.core.st.lock();
        st.count += delta;
        let count = st.count;
        if count < 0 {
            drop(st);
            gopanic("sync: negative WaitGroup counter");
        }
        let woken: Vec<Gid> = if count == 0 { st.waiters.drain(..).collect() } else { Vec::new() };
        drop(st);
        if !woken.is_empty() {
            let mut s = ctx.rt.state.lock();
            for g in &woken {
                s.wake(*g, ctx.gid, Some(cu));
            }
        }
        let ev = if is_done {
            EventKind::WgDone { wg: self.core.id, count }
        } else {
            EventKind::WgAdd { wg: self.core.id, delta, count }
        };
        ctx.rt.tb.push(ctx.gid, ev, Some(cu));
    }

    /// Block until the counter is zero.
    #[track_caller]
    pub fn wait(&self) {
        let cu = cu_here(CuKind::Wait, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Wait, &cu);
        let mut st = self.core.st.lock();
        if st.count > 0 {
            st.waiters.push_back(ctx.gid);
            drop(st);
            block_current(&ctx, BlockReason::WaitGroup, None, Some(cu));
        } else {
            drop(st);
        }
        ctx.rt.tb.push(ctx.gid, EventKind::WgWait { wg: self.core.id }, Some(cu));
    }

    /// The current counter value (for tests and reports).
    pub fn count(&self) -> i64 {
        self.core.st.lock().count
    }
}

// ---------------------------------------------------------------------
// Cond
// ---------------------------------------------------------------------

struct CondSt {
    waiters: VecDeque<Gid>,
}

struct CondCore {
    id: RId,
    mu: Mutex,
    st: PlMutex<CondSt>,
}

/// Go's `sync.Cond`: a condition variable bound to a [`Mutex`].
#[derive(Clone)]
pub struct Cond {
    core: Arc<CondCore>,
}

impl std::fmt::Debug for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cond").field("id", &self.core.id).finish()
    }
}

impl Cond {
    /// Create a condition variable bound to `mu`.
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn new(mu: &Mutex) -> Cond {
        let ctx = current();
        let id = ctx.rt.state.lock().alloc_rid();
        Cond {
            core: Arc::new(CondCore {
                id,
                mu: mu.clone(),
                st: PlMutex::new(CondSt { waiters: VecDeque::new() }),
            }),
        }
    }

    /// Atomically release the bound mutex and block until signalled,
    /// then re-acquire the mutex before returning.
    ///
    /// # Panics
    /// Panics (via the mutex) if the caller does not hold the lock.
    #[track_caller]
    pub fn wait(&self) {
        let cu = cu_here(CuKind::Wait, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Wait, &cu);
        self.core.st.lock().waiters.push_back(ctx.gid);
        self.core.mu.unlock_impl(&ctx, cu);
        block_current(&ctx, BlockReason::Cond, None, Some(cu));
        self.core.mu.lock_impl(&ctx, cu);
        ctx.rt.tb.push(ctx.gid, EventKind::CondWait { cv: self.core.id }, Some(cu));
    }

    /// Wake one waiter (no-op when none is waiting — the missed-signal
    /// hazard of Go programs is preserved).
    #[track_caller]
    pub fn signal(&self) {
        let cu = cu_here(CuKind::Signal, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Signal, &cu);
        let woken = self.core.st.lock().waiters.pop_front();
        if let Some(g) = woken {
            ctx.rt.state.lock().wake(g, ctx.gid, Some(cu));
        }
        ctx.rt.tb.push(ctx.gid, EventKind::CondSignal { cv: self.core.id }, Some(cu));
    }

    /// Wake all waiters.
    #[track_caller]
    pub fn broadcast(&self) {
        let cu = cu_here(CuKind::Broadcast, std::panic::Location::caller());
        let ctx = current();
        op_enter(&ctx, CuKind::Broadcast, &cu);
        let woken: Vec<Gid> = self.core.st.lock().waiters.drain(..).collect();
        if !woken.is_empty() {
            let mut s = ctx.rt.state.lock();
            for g in woken {
                s.wake(g, ctx.gid, Some(cu));
            }
        }
        ctx.rt.tb.push(ctx.gid, EventKind::CondBroadcast { cv: self.core.id }, Some(cu));
    }
}

// ---------------------------------------------------------------------
// Once
// ---------------------------------------------------------------------

struct OnceCore {
    mu: Mutex,
    done: PlMutex<bool>,
}

/// Go's `sync.Once`: `do_once` runs its closure exactly once across all
/// goroutines; concurrent callers block until the first call completes
/// (so a `do_once` that blocks forever wedges every later caller — a
/// real Go bug pattern this runtime preserves).
#[derive(Clone)]
pub struct Once {
    core: Arc<OnceCore>,
}

impl std::fmt::Debug for Once {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Once").field("done", &*self.core.done.lock()).finish()
    }
}

impl Default for Once {
    fn default() -> Self {
        Self::new()
    }
}

impl Once {
    /// Create a fresh once-gate.
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn new() -> Once {
        Once { core: Arc::new(OnceCore { mu: Mutex::new(), done: PlMutex::new(false) }) }
    }

    /// Run `f` if nobody has yet; otherwise wait for the first runner to
    /// finish and return without calling `f`.
    #[track_caller]
    pub fn do_once(&self, f: impl FnOnce()) {
        // Fast path without taking the goroutine-level lock.
        if *self.core.done.lock() {
            return;
        }
        self.core.mu.lock();
        let already = *self.core.done.lock();
        if !already {
            f();
            *self.core.done.lock() = true;
        }
        self.core.mu.unlock();
    }

    /// Has the closure run to completion?
    pub fn is_done(&self) -> bool {
        *self.core.done.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::Chan;
    use crate::config::{Config, RunOutcome};
    use crate::rt::{go, go_named, gosched, Runtime};

    fn cfg(seed: u64) -> Config {
        // These tests pin FIFO handoff order and step-exact
        // interleavings — native-strategy semantics; an ambient
        // GOAT_STRATEGY must not reshuffle them.
        Config::new(seed)
            .with_native_preempt_prob(0.0)
            .with_strategy(crate::strategy::StrategyKind::Native)
    }

    #[test]
    fn mutex_mutual_exclusion() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            let counter = Chan::<i32>::new(100);
            for _ in 0..5 {
                let mu = mu.clone();
                let c = counter.clone();
                go(move || {
                    mu.lock();
                    c.send(1);
                    gosched(); // try to interleave inside the critical section
                    c.send(-1);
                    mu.unlock();
                });
            }
            for _ in 0..10 {
                gosched();
            }
            // +1 must always be followed by -1: exclusion held
            let mut depth = 0;
            let mut max_depth = 0;
            while let Some(Some(v)) = counter.try_recv() {
                depth += v;
                max_depth = max_depth.max(depth);
            }
            assert_eq!(max_depth, 1, "two goroutines inside the critical section");
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn double_lock_self_deadlocks() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            mu.lock();
            mu.lock(); // Go mutexes are not reentrant
        });
        assert!(matches!(r.outcome, RunOutcome::GlobalDeadlock { .. }));
    }

    #[test]
    fn unlock_of_unlocked_panics() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            mu.unlock();
        });
        match r.outcome {
            RunOutcome::Panicked { ref msg, .. } => assert!(msg.contains("unlock"), "{msg}"),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn cross_goroutine_unlock_is_allowed() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            mu.lock();
            let mu2 = mu.clone();
            go(move || mu2.unlock());
            gosched();
            mu.lock(); // re-acquire after the child unlocked
            mu.unlock();
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            assert!(mu.try_lock());
            assert!(!mu.try_lock());
            mu.unlock();
            assert!(mu.try_lock());
            mu.unlock();
        });
        assert!(r.clean());
    }

    #[test]
    fn lock_handoff_is_fifo() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            let order: Chan<u32> = Chan::new(10);
            mu.lock();
            for i in 0..3 {
                let mu = mu.clone();
                let o = order.clone();
                go_named(&format!("w{i}"), move || {
                    mu.lock();
                    o.send(i);
                    mu.unlock();
                });
            }
            for _ in 0..5 {
                gosched(); // let all three block in FIFO order
            }
            mu.unlock();
            for _ in 0..5 {
                gosched();
            }
            assert_eq!(order.recv(), Some(0));
            assert_eq!(order.recv(), Some(1));
            assert_eq!(order.recv(), Some(2));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let r = Runtime::run(cfg(0), || {
            let rw = RwLock::new();
            rw.rlock();
            rw.rlock(); // second reader does not block
            rw.runlock();
            rw.runlock();
        });
        assert!(r.clean());
    }

    #[test]
    fn rwlock_writer_excludes_readers() {
        let r = Runtime::run(cfg(0), || {
            let rw = RwLock::new();
            let probe: Chan<&'static str> = Chan::new(4);
            rw.lock();
            let rw2 = rw.clone();
            let p = probe.clone();
            go(move || {
                p.send("before-rlock");
                rw2.rlock();
                p.send("got-rlock");
                rw2.runlock();
            });
            for _ in 0..4 {
                gosched();
            }
            assert_eq!(probe.try_recv(), Some(Some("before-rlock")));
            assert_eq!(probe.try_recv(), None, "reader must still be blocked");
            rw.unlock();
            for _ in 0..4 {
                gosched();
            }
            assert_eq!(probe.try_recv(), Some(Some("got-rlock")));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn rwlock_write_preference_blocks_new_readers() {
        // reader holds; writer waits; second reader must wait behind the
        // writer (the recursive-read-lock deadlock pattern).
        let r = Runtime::run(cfg(0), || {
            let rw = RwLock::new();
            let log: Chan<&'static str> = Chan::new(8);
            rw.rlock();
            let w = rw.clone();
            let lw = log.clone();
            go_named("writer", move || {
                w.lock();
                lw.send("writer");
                w.unlock();
            });
            gosched(); // writer now waits
            let r2 = rw.clone();
            let lr = log.clone();
            go_named("reader2", move || {
                r2.rlock();
                lr.send("reader2");
                r2.runlock();
            });
            gosched(); // reader2 must queue behind the writer
            assert_eq!(log.try_recv(), None);
            rw.runlock();
            for _ in 0..6 {
                gosched();
            }
            assert_eq!(log.recv(), Some("writer"), "writer goes first");
            assert_eq!(log.recv(), Some("reader2"));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn waitgroup_waits_for_all() {
        let r = Runtime::run(cfg(0), || {
            let wg = WaitGroup::new();
            let done: Chan<u32> = Chan::new(4);
            for i in 0..4 {
                wg.add(1);
                let wg = wg.clone();
                let d = done.clone();
                go(move || {
                    d.send(i);
                    wg.done();
                });
            }
            wg.wait();
            assert_eq!(done.len(), 4, "all workers ran before wait returned");
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn waitgroup_negative_counter_panics() {
        let r = Runtime::run(cfg(0), || {
            let wg = WaitGroup::new();
            wg.done();
        });
        match r.outcome {
            RunOutcome::Panicked { ref msg, .. } => assert!(msg.contains("negative"), "{msg}"),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn waitgroup_missing_done_deadlocks() {
        let r = Runtime::run(cfg(0), || {
            let wg = WaitGroup::new();
            wg.add(2);
            let wg2 = wg.clone();
            go(move || wg2.done()); // only one of two
            wg.wait();
        });
        assert!(matches!(r.outcome, RunOutcome::GlobalDeadlock { .. }));
    }

    #[test]
    fn cond_signal_wakes_waiter() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            let cv = Cond::new(&mu);
            let flag: Chan<bool> = Chan::new(1);
            let mu2 = mu.clone();
            let cv2 = cv.clone();
            let f2 = flag.clone();
            go_named("waiter", move || {
                mu2.lock();
                cv2.wait();
                mu2.unlock();
                f2.send(true);
            });
            gosched(); // let the waiter block
            mu.lock();
            cv.signal();
            mu.unlock();
            assert_eq!(flag.recv(), Some(true));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn cond_missed_signal_blocks_forever() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            let cv = Cond::new(&mu);
            cv.signal(); // nobody waiting: signal lost
            mu.lock();
            cv.wait(); // waits for a signal that already happened
        });
        assert!(matches!(r.outcome, RunOutcome::GlobalDeadlock { .. }));
    }

    #[test]
    fn cond_broadcast_wakes_all() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            let cv = Cond::new(&mu);
            let wg = WaitGroup::new();
            for _ in 0..3 {
                wg.add(1);
                let (mu, cv, wg) = (mu.clone(), cv.clone(), wg.clone());
                go(move || {
                    mu.lock();
                    cv.wait();
                    mu.unlock();
                    wg.done();
                });
            }
            for _ in 0..6 {
                gosched();
            }
            mu.lock();
            cv.broadcast();
            mu.unlock();
            wg.wait();
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn once_runs_exactly_once() {
        let r = Runtime::run(cfg(0), || {
            let once = Once::new();
            let counter: Chan<u8> = Chan::new(10);
            for _ in 0..4 {
                let (once, counter) = (once.clone(), counter.clone());
                go(move || {
                    once.do_once(|| counter.send(1));
                });
            }
            for _ in 0..6 {
                gosched();
            }
            assert!(once.is_done());
            assert_eq!(counter.len(), 1, "closure ran exactly once");
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn once_blocks_followers_until_first_finishes() {
        let r = Runtime::run(cfg(0), || {
            let once = Once::new();
            let gate: Chan<()> = Chan::new(0);
            let log: Chan<&'static str> = Chan::new(4);
            {
                let (once, gate, log) = (once.clone(), gate.clone(), log.clone());
                go_named("first", move || {
                    once.do_once(|| {
                        log.send("init-start");
                        gate.recv(); // the init blocks until released
                        log.send("init-end");
                    });
                });
            }
            {
                let (once, log) = (once.clone(), log.clone());
                go_named("second", move || {
                    once.do_once(|| log.send("second-init"));
                    log.send("second-done");
                });
            }
            for _ in 0..4 {
                gosched();
            }
            // second must still be blocked behind the stuck init
            assert_eq!(log.try_recv(), Some(Some("init-start")));
            assert_eq!(log.try_recv(), None);
            gate.send(()); // release the init
            for _ in 0..4 {
                gosched();
            }
            assert_eq!(log.recv(), Some("init-end"));
            assert_eq!(log.recv(), Some("second-done"));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn ab_ba_lock_order_deadlocks() {
        let r = Runtime::run(cfg(0), || {
            let a = Mutex::new();
            let b = Mutex::new();
            let (a2, b2) = (a.clone(), b.clone());
            go_named("ba", move || {
                b2.lock();
                gosched();
                a2.lock();
                a2.unlock();
                b2.unlock();
            });
            a.lock();
            gosched(); // let the other goroutine take b
            b.lock(); // circular wait
            b.unlock();
            a.unlock();
        });
        assert!(matches!(r.outcome, RunOutcome::GlobalDeadlock { .. }), "{:?}", r.outcome);
    }
}
