//! The single-token cooperative scheduler.
//!
//! Goroutines are OS threads, but **exactly one** holds the *run token*
//! at any moment; everything else is parked. Every primitive operation
//! funnels through this module to block, wake, yield and emit ECT events,
//! which gives the runtime three properties the paper's methodology
//! needs:
//!
//! 1. **Determinism** — given a [`Config::seed`], the whole interleaving
//!    (run-queue choices, select choices, injected yields) replays
//!    exactly;
//! 2. **Complete traces** — every scheduling-relevant action passes a
//!    single emission point;
//! 3. **Virtual time** — the clock advances per scheduler step and
//!    fast-forwards over idle periods, making timeouts deterministic.
//!
//! The *native* scheduling policy models Go's production scheduler: the
//! FIFO global run queue is followed, except with probability ε
//! ([`Config::native_preempt_prob`]) a random runnable goroutine is
//! chosen instead — the preemption/multi-processor noise that makes rare
//! interleavings rare.

use crate::config::{
    AliveGoroutine, Config, Decision, ReplayLog, RunOutcome, RunResult, SchedCounters, SchedPolicy,
    TimeoutPhase,
};
use crate::faultpoint::{self, SeedFault};
use crate::monitor::Monitor;
use crate::park::Parker;
use crate::strategy::{Strategy, StrategyKind, YieldChoice, YieldCtx};
use goat_model::{Cu, CuKind, Istr};
use goat_trace::{BlockReason, Ect, EventKind, Gid, RId, TraceBuf, VTime};
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Panic payload used to unwind goroutine threads at shutdown.
pub(crate) struct ShutdownSignal;

/// Panic payload for Go-level runtime panics ("send on closed channel").
pub(crate) struct GoPanic {
    pub msg: String,
    /// Call site of the `gopanic` that raised this panic (deterministic
    /// forensics: the same seed panics at the same source location).
    pub site: &'static panic::Location<'static>,
}

/// Raise a Go-level panic (crashes the whole program, like Go).
#[track_caller]
pub(crate) fn gopanic(msg: impl Into<String>) -> ! {
    panic::panic_any(GoPanic { msg: msg.into(), site: panic::Location::caller() })
}

pub(crate) fn shutdown_unwind() -> ! {
    panic::panic_any(ShutdownSignal)
}

thread_local! {
    /// Forensics captured by the panic hook for the most recent *genuine*
    /// panic on this thread (location + truncated backtrace). The hook
    /// runs on the panicking thread, so `goroutine_main`'s catch site can
    /// read it back without any cross-thread plumbing.
    static LAST_PANIC_DETAIL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Cap on backtrace lines folded into a panic's forensics detail.
const PANIC_BACKTRACE_LINES: usize = 16;

/// Render a genuine panic's forensics: the panic location, plus a
/// truncated backtrace when `RUST_BACKTRACE` enables capture (the
/// default — capture disabled — keeps the detail deterministic).
fn render_panic_detail(info: &panic::PanicHookInfo<'_>) -> String {
    let mut detail = match info.location() {
        Some(loc) => format!("panicked at {}:{}:{}", loc.file(), loc.line(), loc.column()),
        None => "panicked at unknown location".to_string(),
    };
    let bt = std::backtrace::Backtrace::capture();
    if bt.status() == std::backtrace::BacktraceStatus::Captured {
        let text = bt.to_string();
        let mut lines = text.lines();
        for line in lines.by_ref().take(PANIC_BACKTRACE_LINES) {
            detail.push('\n');
            detail.push_str(line);
        }
        let dropped = lines.count();
        if dropped > 0 {
            detail.push_str(&format!("\n... ({dropped} more backtrace lines)"));
        }
    }
    detail
}

/// Install a process-wide panic hook that silences the runtime's
/// controlled unwinds (shutdown signals and Go-level panics) while
/// delegating genuine panics to the previous hook. Genuine panics also
/// leave their forensics (location + truncated backtrace) in a
/// thread-local for the goroutine catch site to collect.
fn install_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<ShutdownSignal>() || p.is::<GoPanic>() {
                return;
            }
            let detail = render_panic_detail(info);
            LAST_PANIC_DETAIL.with(|d| *d.borrow_mut() = Some(detail));
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum GState {
    Runnable,
    Running,
    Blocked(BlockReason),
    Done,
}

struct GSlot {
    gid: Gid,
    name: Istr,
    internal: bool,
    state: GState,
    parker: Arc<Parker>,
}

/// Commit point shared by the registrations of one blocked select.
///
/// The first operation (peer send/recv, close, timer) that consumes one
/// of the select's registered cases *commits* the select to that case;
/// every other registration becomes stale and is skipped or removed.
pub(crate) struct SelToken {
    winner: Mutex<Option<usize>>,
}

impl SelToken {
    pub(crate) fn new() -> Arc<SelToken> {
        Arc::new(SelToken { winner: Mutex::new(None) })
    }

    /// Try to commit the select to case `idx`; false if already won.
    pub(crate) fn try_commit(&self, idx: usize) -> bool {
        let mut w = self.winner.lock();
        if w.is_none() {
            *w = Some(idx);
            true
        } else {
            false
        }
    }

    /// The committed case, if any.
    pub(crate) fn winner(&self) -> Option<usize> {
        *self.winner.lock()
    }
}

/// A timer action fired when virtual time reaches the deadline.
pub(crate) trait TimerTarget: Send + Sync {
    /// Deliver the timer's effect (wake a goroutine, complete a channel).
    fn fire(&self, s: &mut Sched);
}

enum TimerAction {
    Wake(Gid),
    Fire(Arc<dyn TimerTarget>),
}

struct TimerEntry {
    deadline: u64,
    seq: u64,
    id: RId,
    action: TimerAction,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// The scheduler: all mutable run state behind one lock.
pub(crate) struct Sched {
    cfg: Config,
    slots: Vec<GSlot>,
    runq: VecDeque<Gid>,
    rng: SmallRng,
    clock: u64,
    steps: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    next_rid: u64,
    /// The run's trace sink, shared with [`RtShared`]: internally
    /// synchronized, so the token holder appends without this lock. The
    /// scheduler publishes its virtual clock into it on every tick.
    tb: Arc<TraceBuf>,
    outcome: Option<RunOutcome>,
    shutdown: bool,
    yields_injected: u32,
    monitor: Option<Arc<dyn Monitor>>,
    /// Alive-goroutine snapshot taken at the moment the outcome was
    /// decided (before shutdown unwinding marks everything done).
    alive_snapshot: Option<Vec<AliveGoroutine>>,
    /// Forensics for the panic that decided the outcome (call site and,
    /// when enabled, a truncated backtrace); exported through
    /// [`RunResult::panic_detail`].
    panic_detail: Option<String>,
    /// Main returned; the scheduler is draining runnable goroutines
    /// before declaring the run complete.
    main_exited: bool,
    /// Every nondeterministic choice taken, for schedule-forcing replay.
    decision_log: Vec<Decision>,
    /// Cursor into the replay log when the policy is `Replay`.
    replay_cursor: usize,
    /// The replayed program diverged from its log.
    replay_diverged: bool,
    /// Per-run scheduler counters (plain increments under the run lock;
    /// exported through [`RunResult::sched`] and, when telemetry is
    /// enabled, the global registry at teardown).
    counters: SchedCounters,
    /// Wall-clock start of the run, for the watchdog.
    started: Instant,
    /// The driver's soft watchdog deadline passed; the next goroutine to
    /// reach the scheduler gate aborts the run cooperatively.
    timeout_requested: bool,
    /// Pluggable scheduling strategy (native / random / PCT); consulted
    /// at every pick and yield decision that is not replayed from a log.
    strategy: Box<dyn Strategy>,
}

impl Sched {
    fn new(cfg: Config, monitor: Option<Arc<dyn Monitor>>, tb: Arc<TraceBuf>) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // `UniformRandom` predates the strategy layer and still forces
        // the random strategy; native and replay runs use the configured
        // one (replay only consults it after divergence). Building
        // native/random consumes no RNG draws, preserving byte-identity
        // with the pre-strategy scheduler.
        let kind = match cfg.policy {
            SchedPolicy::UniformRandom => StrategyKind::Random,
            _ => cfg.strategy,
        };
        let strategy = kind.build(&mut rng);
        Sched {
            cfg,
            slots: Vec::new(),
            runq: VecDeque::new(),
            rng,
            clock: 0,
            steps: 0,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            next_rid: 0,
            tb,
            outcome: None,
            shutdown: false,
            yields_injected: 0,
            monitor,
            alive_snapshot: None,
            panic_detail: None,
            main_exited: false,
            decision_log: Vec::new(),
            replay_cursor: 0,
            replay_diverged: false,
            counters: SchedCounters::default(),
            started: Instant::now(),
            timeout_requested: false,
            strategy,
        }
    }

    fn slot(&self, g: Gid) -> &GSlot {
        &self.slots[(g.0 - 1) as usize]
    }

    fn slot_mut(&mut self, g: Gid) -> &mut GSlot {
        &mut self.slots[(g.0 - 1) as usize]
    }

    /// Append an ECT event from scheduler context (timer fires,
    /// bootstrap, wakes). Gate functions holding the token append
    /// through [`RtShared::tb`] directly, without this lock.
    pub(crate) fn emit(&mut self, g: Gid, kind: EventKind, cu: Option<Cu>) {
        self.tb.push(g, kind, cu);
    }

    /// Allocate a fresh traced-resource id.
    pub(crate) fn alloc_rid(&mut self) -> RId {
        self.next_rid += 1;
        RId(self.next_rid)
    }

    /// Select-case choice: replayed from the log when the policy is
    /// `Replay`, pseudo-random otherwise; always recorded.
    pub(crate) fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0);
        let replayed = if let SchedPolicy::Replay(log) = &self.cfg.policy {
            if !self.replay_diverged {
                match log.decisions.get(self.replay_cursor) {
                    Some(Decision::SelectChoice(i)) if *i < n => {
                        self.replay_cursor += 1;
                        Some(*i)
                    }
                    _ => {
                        self.replay_diverged = true;
                        None
                    }
                }
            } else {
                None
            }
        } else {
            None
        };
        let i = replayed.unwrap_or_else(|| self.rng.gen_range(0..n));
        self.counters.select_choices += 1;
        self.decision_log.push(Decision::SelectChoice(i));
        i
    }

    /// Yield-handler decision in front of the CU goroutine `g` is about
    /// to execute: replayed or delegated to the strategy (delay budget /
    /// native preemption noise / PCT change points); always recorded.
    pub(crate) fn decide_yield(&mut self, g: Gid) -> bool {
        let replayed = if let SchedPolicy::Replay(log) = &self.cfg.policy {
            if !self.replay_diverged {
                match log.decisions.get(self.replay_cursor) {
                    Some(Decision::YieldAt(b)) => {
                        self.replay_cursor += 1;
                        Some(*b)
                    }
                    _ => {
                        self.replay_diverged = true;
                        None
                    }
                }
            } else {
                None
            }
        } else {
            None
        };
        let yield_now = match replayed {
            Some(b) => b,
            None => {
                let ctx = YieldCtx {
                    delay_bound: self.cfg.delay_bound,
                    yields_injected: self.yields_injected,
                    yield_prob: self.cfg.yield_prob,
                    native_preempt_prob: self.cfg.native_preempt_prob,
                    runq_nonempty: !self.runq.is_empty(),
                };
                match self.strategy.decide_yield(g, &ctx, &mut self.rng) {
                    YieldChoice::Inject => {
                        self.yields_injected += 1;
                        true
                    }
                    YieldChoice::Preempt => true,
                    YieldChoice::Run => false,
                }
            }
        };
        self.decision_log.push(Decision::YieldAt(yield_now));
        yield_now
    }

    /// Borrow the attached monitor (no `Arc` refcount bump — callers on
    /// the scheduling hot path invoke it many times per step).
    pub(crate) fn monitor(&self) -> Option<&Arc<dyn Monitor>> {
        self.monitor.as_ref()
    }

    /// Create a goroutine slot in `Runnable` state and enqueue it.
    fn new_goroutine(&mut self, name: Istr, internal: bool) -> Gid {
        let gid = Gid(self.slots.len() as u64 + 1);
        self.slots.push(GSlot {
            gid,
            name,
            internal,
            state: GState::Runnable,
            parker: Parker::new(self.cfg.spin),
        });
        self.runq.push_back(gid);
        // Strategy hook: PCT draws the goroutine's initial priority
        // here; native/random consume no RNG draws.
        self.strategy.on_spawn(gid, &mut self.rng);
        gid
    }

    /// Make a blocked goroutine runnable; `by` is the waker (whose op CU
    /// is attached to the `GoUnblock` event for coverage attribution).
    pub(crate) fn wake(&mut self, g: Gid, by: Gid, cu: Option<Cu>) {
        let slot = self.slot_mut(g);
        debug_assert!(matches!(slot.state, GState::Blocked(_)), "waking non-blocked goroutine {g}");
        slot.state = GState::Runnable;
        self.runq.push_back(g);
        self.counters.unblocks += 1;
        self.emit(by, EventKind::GoUnblock { g }, cu);
    }

    /// Register a timer; fires when the virtual clock reaches `deadline`.
    pub(crate) fn add_timer_wake(&mut self, after_ns: u64, g: Gid) -> RId {
        let id = self.alloc_rid();
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            deadline: self.clock + after_ns,
            seq: self.timer_seq,
            id,
            action: TimerAction::Wake(g),
        }));
        id
    }

    /// Register a timer that fires an arbitrary target (e.g. an `after`
    /// channel delivery).
    pub(crate) fn add_timer_fire(&mut self, after_ns: u64, target: Arc<dyn TimerTarget>) -> RId {
        let id = self.alloc_rid();
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            deadline: self.clock + after_ns,
            seq: self.timer_seq,
            id,
            action: TimerAction::Fire(target),
        }));
        id
    }

    fn fire_due_timers(&mut self) {
        loop {
            match self.timers.peek() {
                Some(Reverse(t)) if t.deadline <= self.clock => {}
                _ => return,
            }
            let Reverse(t) = self.timers.pop().expect("peeked");
            self.counters.timer_fires += 1;
            self.emit(Gid::RUNTIME, EventKind::TimerFire { timer: t.id }, None);
            match t.action {
                TimerAction::Wake(g) => {
                    // The goroutine may have been torn down already.
                    if matches!(self.slot(g).state, GState::Blocked(_)) {
                        self.wake(g, Gid::RUNTIME, None);
                    }
                }
                TimerAction::Fire(target) => target.fire(self),
            }
        }
    }

    /// One scheduler step: advance time, fire timers, enforce the
    /// watchdog. Returns false when the step limit aborts the run.
    pub(crate) fn tick(&mut self) -> bool {
        self.steps += 1;
        self.clock += self.cfg.time_step_ns;
        self.tb.set_clock(self.clock);
        if let Some(m) = &self.monitor {
            m.on_step(self.steps, self.clock);
        }
        // Synthetic GC cadence: the Go tracer interleaves GC events with
        // application events; emit a cycle every few thousand steps so
        // traces carry the GC/Mem category with realistic placement.
        if self.steps.is_multiple_of(4096) {
            self.emit(Gid::RUNTIME, EventKind::GcStart, None);
            self.emit(Gid::RUNTIME, EventKind::HeapAlloc { bytes: self.steps * 64 }, None);
            self.emit(Gid::RUNTIME, EventKind::GcDone, None);
        }
        self.fire_due_timers();
        if self.timeout_requested && self.outcome.is_none() {
            // Cooperative watchdog abort: the driver's soft deadline
            // passed and this goroutine reached the scheduler gate, so
            // the run can be unwound cleanly (threads reclaimed).
            let elapsed_ms = self.started.elapsed().as_millis() as u64;
            if let Some(m) = &self.monitor {
                m.on_timeout(TimeoutPhase::Cooperative, elapsed_ms);
            }
            self.set_outcome(RunOutcome::TimedOut { phase: TimeoutPhase::Cooperative, elapsed_ms });
            return false;
        }
        if self.steps > self.cfg.max_steps && self.outcome.is_none() {
            self.set_outcome(RunOutcome::StepLimit);
            return false;
        }
        true
    }

    /// Run-queue pop according to the scheduling policy; every pick is
    /// recorded for schedule-forcing replay.
    fn pick_next(&mut self) -> Option<Gid> {
        if self.runq.is_empty() {
            return None;
        }
        let replayed: Option<usize> = if let SchedPolicy::Replay(log) = &self.cfg.policy {
            if !self.replay_diverged {
                match log.decisions.get(self.replay_cursor) {
                    Some(Decision::Pick(g)) => match self.runq.iter().position(|x| x == g) {
                        Some(idx) => {
                            self.replay_cursor += 1;
                            Some(idx)
                        }
                        None => {
                            self.replay_diverged = true;
                            None
                        }
                    },
                    _ => {
                        self.replay_diverged = true;
                        None
                    }
                }
            } else {
                None
            }
        } else {
            None
        };
        let (idx, random) = match replayed {
            Some(i) => (i, false),
            None => self.strategy.pick(&self.runq, self.cfg.native_preempt_prob, &mut self.rng),
        };
        let g = self.runq.remove(idx);
        if let Some(g) = g {
            self.counters.picks += 1;
            if random {
                self.counters.random_picks += 1;
            }
            self.decision_log.push(Decision::Pick(g));
        }
        g
    }

    /// Hand the token to the next runnable goroutine, fast-forwarding
    /// virtual time over idle periods; declares global deadlock when
    /// nothing can ever run again.
    pub(crate) fn schedule_next(&mut self) {
        // Safety bound: with self-re-arming timers (tickers) and nothing
        // runnable, the fast-forward loop could spin forever; treat that
        // as a hang, like Go's runtime (which never declares deadlock
        // while timers are pending).
        let mut idle_iterations: u64 = 0;
        loop {
            if self.shutdown || self.outcome.is_some() {
                return;
            }
            idle_iterations += 1;
            if idle_iterations > 100_000 {
                self.set_outcome(RunOutcome::StepLimit);
                return;
            }
            self.fire_due_timers();
            if let Some(g) = self.pick_next() {
                let slot = self.slot_mut(g);
                slot.state = GState::Running;
                slot.parker.grant();
                return;
            }
            if self.main_exited {
                // Main returned and every still-runnable goroutine got a
                // grace drain: the program is over. Whatever is blocked
                // now is what goleak's end-of-main check would see.
                let alive: Vec<AliveGoroutine> =
                    self.alive_app().into_iter().filter(|a| !a.internal).collect();
                if let Some(m) = &self.monitor {
                    m.on_main_end(&alive);
                }
                self.set_outcome(RunOutcome::Completed);
                return;
            }
            if let Some(Reverse(t)) = self.timers.peek() {
                self.clock = t.deadline;
                self.tb.set_clock(self.clock);
                continue;
            }
            // Nothing runnable, no timers: the built-in detector's
            // "all goroutines are asleep" condition.
            let blocked: Vec<Gid> = self
                .slots
                .iter()
                .filter(|s| matches!(s.state, GState::Blocked(_)))
                .map(|s| s.gid)
                .collect();
            self.set_outcome(RunOutcome::GlobalDeadlock { blocked });
            return;
        }
    }

    /// Record the outcome (first writer wins) and snapshot which
    /// goroutines were still alive at that moment.
    pub(crate) fn set_outcome(&mut self, outcome: RunOutcome) {
        if self.outcome.is_none() {
            self.outcome = Some(outcome);
            self.alive_snapshot = Some(self.alive_app());
        }
    }

    /// Application goroutines that have not finished.
    fn alive_app(&self) -> Vec<AliveGoroutine> {
        self.slots
            .iter()
            .filter(|s| s.state != GState::Done && s.gid != Gid::MAIN)
            .map(|s| AliveGoroutine {
                g: s.gid,
                name: s.name.to_string(),
                state: match &s.state {
                    GState::Runnable => "runnable".to_string(),
                    GState::Running => "running".to_string(),
                    GState::Blocked(r) => format!("blocked: {r}"),
                    GState::Done => unreachable!(),
                },
                internal: s.internal,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Shared runtime handle + thread-local context
// ---------------------------------------------------------------------

/// Shared state of one runtime instance.
pub(crate) struct RtShared {
    pub(crate) state: Mutex<Sched>,
    /// The run's trace sink. Internally synchronized and append-only;
    /// the token holder pushes its own events here **without** taking
    /// [`RtShared::state`]. Total order is preserved because exactly one
    /// goroutine holds the run token, and within any `Sched` critical
    /// section every emission happens before the token grant.
    pub(crate) tb: Arc<TraceBuf>,
    /// The attached monitor, reachable without the scheduler lock so
    /// gate functions can consult it on lock-free paths.
    pub(crate) monitor: Option<Arc<dyn Monitor>>,
    done_cv: Condvar,
    /// Goroutine jobs of this runtime still running on some OS thread
    /// (pooled or not). Replaces the historical `Vec<JoinHandle>`,
    /// which grew by one entry per spawned goroutine and forced a
    /// join-per-goroutine teardown.
    threads: Mutex<u64>,
    threads_cv: Condvar,
    /// Whether goroutines of this runtime run on the shared worker
    /// pool (snapshot of [`Config::pool`] at construction).
    pooled: bool,
}

impl RtShared {
    /// Record the outcome (first writer wins), snapshot which goroutines
    /// were still alive, and wake the driver.
    pub(crate) fn finish(&self, s: &mut Sched, outcome: RunOutcome) {
        s.set_outcome(outcome);
        self.done_cv.notify_all();
    }
}

/// The per-thread goroutine context.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub rt: Arc<RtShared>,
    pub gid: Gid,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current goroutine context.
///
/// # Panics
/// Panics when called outside a goroutine (primitives may only be used
/// inside [`Runtime::run`]).
pub(crate) fn current() -> Ctx {
    CURRENT.with(|c| {
        c.borrow().clone().expect(
            "GoAT runtime primitive used outside a goroutine; wrap the code in Runtime::run",
        )
    })
}

/// The id of the current goroutine.
pub fn gid() -> Gid {
    current().gid
}

// ---------------------------------------------------------------------
// Blocking / yielding entry points used by the primitives
// ---------------------------------------------------------------------

/// Block the current goroutine for `reason`; returns when rescheduled.
/// `holder` attributes lock contention (Req3 *blocking*) to the holder's
/// acquisition site.
pub(crate) fn block_current(
    ctx: &Ctx,
    reason: BlockReason,
    holder: Option<(Gid, Option<Cu>)>,
    cu: Option<Cu>,
) {
    // Out-of-lock append: this goroutine still holds the run token, so
    // nothing else can emit until `schedule_next` grants it away below.
    let (holder_g, holder_cu) = match holder {
        Some((g, c)) => (Some(g), c),
        None => (None, None),
    };
    ctx.rt.tb.push(ctx.gid, EventKind::GoBlock { reason, holder_cu, holder: holder_g }, cu);
    let parker = {
        let mut s = ctx.rt.state.lock();
        s.slot_mut(ctx.gid).state = GState::Blocked(reason);
        s.counters.blocks += 1;
        if !s.tick() {
            ctx.rt.finish(&mut s, RunOutcome::StepLimit);
        }
        s.schedule_next();
        if s.outcome.is_some() {
            ctx.rt.done_cv.notify_all();
        }
        s.slot(ctx.gid).parker.clone()
    };
    if parker.park().is_err() {
        shutdown_unwind();
    }
}

/// Yield the processor: requeue at the back of the run queue.
/// `preempt` distinguishes injected perturbation yields (`GoPreempt`)
/// from program-requested `gosched()` yields.
pub(crate) fn yield_current(ctx: &Ctx, preempt: bool, cu: Option<Cu>) {
    let kind =
        if preempt { EventKind::GoPreempt } else { EventKind::GoSched { trace_stop: false } };
    // Out-of-lock append: see `block_current`.
    ctx.rt.tb.push(ctx.gid, kind, cu);
    let parker = {
        let mut s = ctx.rt.state.lock();
        s.slot_mut(ctx.gid).state = GState::Runnable;
        s.runq.push_back(ctx.gid);
        if preempt {
            s.counters.yields_preempt += 1;
        } else {
            s.counters.yields_gosched += 1;
        }
        if !s.tick() {
            ctx.rt.finish(&mut s, RunOutcome::StepLimit);
        }
        s.schedule_next();
        if s.outcome.is_some() {
            ctx.rt.done_cv.notify_all();
        }
        s.slot(ctx.gid).parker.clone()
    };
    if parker.park().is_err() {
        shutdown_unwind();
    }
}

/// Common entry of every traced primitive: accounts a step, enforces the
/// watchdog and runs the injected yield handler (`goat.handler()` of
/// §III-B.2) in front of the CU.
pub(crate) fn op_enter(ctx: &Ctx, _kind: CuKind, cu: &Cu) {
    let do_yield = {
        let mut s = ctx.rt.state.lock();
        if !s.tick() {
            ctx.rt.finish(&mut s, RunOutcome::StepLimit);
            drop(s);
            shutdown_unwind();
        }
        s.decide_yield(ctx.gid)
    };
    if do_yield {
        yield_current(ctx, true, Some(*cu));
    }
}

/// Build a CU for a caller location.
pub(crate) fn cu_here(kind: CuKind, loc: &std::panic::Location<'_>) -> Cu {
    Cu::new(loc.file(), loc.line(), kind)
}

// ---------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------

/// Decrements the owning runtime's live-thread count when the
/// goroutine's job finishes, however it finishes (normal completion,
/// shutdown unwind, or a panic escaping `goroutine_main`).
struct ThreadCountGuard {
    rt: Arc<RtShared>,
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        let mut n = self.rt.threads.lock();
        *n -= 1;
        self.rt.threads_cv.notify_all();
    }
}

fn spawn_goroutine(rt: &Arc<RtShared>, gid: Gid, body: Box<dyn FnOnce() + Send + 'static>) {
    let rt2 = Arc::clone(rt);
    *rt.threads.lock() += 1;
    let guard = ThreadCountGuard { rt: Arc::clone(rt) };
    let job: Job = Box::new(move || {
        let _guard = guard;
        goroutine_main(rt2, gid, body);
    });
    let hosted = if rt.pooled {
        crate::pool::global().execute(job)
    } else {
        match faultpoint::should_fail("pool_checkout") {
            Some(reason) => Err(reason),
            None => std::thread::Builder::new()
                .name("goat-g".to_string())
                .spawn(job)
                .map(|_| ())
                .map_err(|e| format!("failed to spawn goroutine thread: {e}")),
        }
    };
    if let Err(reason) = hosted {
        // The job was dropped without running (its ThreadCountGuard has
        // already rolled the live-thread count back). The harness — not
        // the program under test — failed; surface that as an
        // infra-failure outcome so the campaign layer can retry the run.
        let mut s = rt.state.lock();
        rt.finish(&mut s, RunOutcome::InfraFailure { reason });
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Decode a caught panic payload into (message, forensics detail).
///
/// Go-level panics carry their own call site (deterministic); genuine
/// Rust panics read the location + backtrace the hook left in the
/// thread-local on this same thread.
fn panic_forensics(payload: Box<dyn std::any::Any + Send>) -> (String, Option<String>) {
    if let Some(gp) = payload.downcast_ref::<GoPanic>() {
        let detail = format!("go panic at {}:{}", gp.site.file(), gp.site.line());
        (gp.msg.clone(), Some(detail))
    } else {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic".to_string()
        };
        let detail = LAST_PANIC_DETAIL.with(|d| d.borrow_mut().take());
        (msg, detail)
    }
}

fn goroutine_main(rt: Arc<RtShared>, gid: Gid, body: Box<dyn FnOnce() + Send + 'static>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Ctx { rt: Arc::clone(&rt), gid }));
    let parker = { rt.state.lock().slot(gid).parker.clone() };
    if parker.park().is_ok() {
        // Token acquired; the granter emitted its last event before the
        // grant, so this lock-free append lands in total order.
        rt.tb.push(gid, EventKind::GoStart, None);
        let result = panic::catch_unwind(AssertUnwindSafe(body));
        match result {
            Ok(()) => {
                if gid == Gid::MAIN {
                    // Successful main exit: the trace-stopping yield of
                    // §III-E.1, then a grace drain of runnable goroutines
                    // (schedule_next declares completion and runs the
                    // goleak observation point once the queue is empty).
                    rt.tb.push(gid, EventKind::GoSched { trace_stop: true }, None);
                    let mut s = rt.state.lock();
                    s.slot_mut(gid).state = GState::Done;
                    s.main_exited = true;
                    s.schedule_next();
                    if let Some(outcome) = s.outcome.clone() {
                        rt.finish(&mut s, outcome);
                    }
                } else {
                    rt.tb.push(gid, EventKind::GoEnd, None);
                    let mut s = rt.state.lock();
                    s.slot_mut(gid).state = GState::Done;
                    if !s.tick() {
                        rt.finish(&mut s, RunOutcome::StepLimit);
                    }
                    s.schedule_next();
                    if let Some(outcome) = s.outcome.clone() {
                        rt.finish(&mut s, outcome);
                    }
                }
            }
            Err(payload) => {
                if payload.is::<ShutdownSignal>() {
                    let mut s = rt.state.lock();
                    s.slot_mut(gid).state = GState::Done;
                } else {
                    let (msg, detail) = panic_forensics(payload);
                    rt.tb.push(gid, EventKind::GoStop, None);
                    let mut s = rt.state.lock();
                    s.slot_mut(gid).state = GState::Done;
                    if s.outcome.is_none() {
                        s.panic_detail = detail;
                    }
                    rt.finish(&mut s, RunOutcome::Panicked { g: gid, msg });
                }
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Spawn a goroutine executing `f` (Go's `go` statement).
///
/// Must be called from inside a goroutine. The creation site becomes the
/// child's creation CU in the trace and the goroutine tree.
#[track_caller]
pub fn go<F: FnOnce() + Send + 'static>(f: F) -> Gid {
    go_impl("anonymous", false, Box::new(f), std::panic::Location::caller())
}

/// Spawn a named goroutine (names appear in reports and trees).
#[track_caller]
pub fn go_named<F: FnOnce() + Send + 'static>(name: &str, f: F) -> Gid {
    go_impl(name, false, Box::new(f), std::panic::Location::caller())
}

/// Spawn a runtime-internal goroutine, excluded from application-level
/// analysis (the paper's watchdog/tracer goroutines).
#[track_caller]
pub fn go_internal<F: FnOnce() + Send + 'static>(name: &str, f: F) -> Gid {
    go_impl(name, true, Box::new(f), std::panic::Location::caller())
}

fn go_impl(
    name: &str,
    internal: bool,
    body: Box<dyn FnOnce() + Send + 'static>,
    loc: &std::panic::Location<'_>,
) -> Gid {
    let cu = cu_here(CuKind::Go, loc);
    let ctx = current();
    if !internal {
        // GoAT's own helper goroutines are not perturbation targets.
        op_enter(&ctx, CuKind::Go, &cu);
    }
    let name = Istr::new(name);
    let gid = {
        let mut s = ctx.rt.state.lock();
        s.new_goroutine(name, internal)
    };
    // The child is runnable but cannot be granted the token until this
    // goroutine reaches a scheduler gate, so the creation event lands
    // before any child event.
    ctx.rt.tb.push(ctx.gid, EventKind::GoCreate { new_g: gid, name, internal }, Some(cu));
    spawn_goroutine(&ctx.rt, gid, body);
    gid
}

/// Yield the processor (Go's `runtime.Gosched()`).
#[track_caller]
pub fn gosched() {
    let ctx = current();
    yield_current(&ctx, false, None);
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// The GoAT runtime: executes a program under a configuration and
/// returns its outcome, trace and statistics.
#[derive(Debug, Clone, Copy)]
pub struct Runtime;

impl Runtime {
    /// Run `f` as the main goroutine.
    ///
    /// ```
    /// use goat_runtime::{Runtime, Config, go, Chan};
    /// let result = Runtime::run(Config::new(1), || {
    ///     let ch = Chan::new(0);
    ///     go(move || ch.send(41));
    ///     // `ch` was moved into the goroutine; in real programs clone
    ///     // the handle first (see Chan docs).
    /// });
    /// assert!(result.outcome.is_completed());
    /// ```
    pub fn run<F: FnOnce() + Send + 'static>(cfg: Config, f: F) -> RunResult {
        Self::run_monitored(cfg, None, f)
    }

    /// Run `f` with a [`Monitor`] observing primitive operations (how the
    /// baseline detectors of §IV-A attach).
    pub fn run_monitored<F: FnOnce() + Send + 'static>(
        cfg: Config,
        monitor: Option<Arc<dyn Monitor>>,
        f: F,
    ) -> RunResult {
        install_panic_hook();
        let pooled = cfg.pool;
        let seed = cfg.seed;
        let iter_timeout_ms = cfg.iter_timeout_ms;
        let tb = Arc::new(TraceBuf::new(cfg.trace, cfg.max_trace_events));
        let rt = Arc::new(RtShared {
            state: Mutex::new(Sched::new(cfg, monitor.clone(), Arc::clone(&tb))),
            tb,
            monitor,
            done_cv: Condvar::new(),
            threads: Mutex::new(0),
            threads_cv: Condvar::new(),
            pooled,
        });

        // Bootstrap: create the main goroutine and grant it the token.
        {
            let mut s = rt.state.lock();
            s.emit(Gid::RUNTIME, EventKind::Gomaxprocs { n: 1 }, None);
            s.emit(Gid::RUNTIME, EventKind::ProcStart, None);
            let gid = s.new_goroutine(Istr::new("main"), false);
            debug_assert_eq!(gid, Gid::MAIN);
        }
        // Seed-keyed `iter` faults replace the program body wholesale,
        // exercising each watchdog escalation path deterministically.
        let body: Box<dyn FnOnce() + Send + 'static> = match faultpoint::seed_fault("iter", seed) {
            // Stall outside every runtime primitive: no scheduler gate is
            // ever reached, so only the hard watchdog deadline (and the
            // teardown abandonment path) can reclaim this run.
            Some(SeedFault::Wedge) => Box::new(|| std::thread::sleep(Duration::from_secs(3600))),
            // Yield forever: every gosched passes the scheduler gate, so
            // the soft deadline aborts cooperatively (or the step limit
            // fires first when no watchdog is configured).
            Some(SeedFault::Spin) => Box::new(|| loop {
                gosched();
            }),
            Some(SeedFault::Panic) => Box::new(|| gopanic("injected fault: iter:panic")),
            None => Box::new(f),
        };
        spawn_goroutine(&rt, Gid::MAIN, body);
        {
            let mut s = rt.state.lock();
            s.schedule_next();
            if s.outcome.is_some() {
                rt.done_cv.notify_all();
            }
        }

        // Wait for an outcome, then tear everything down. With a
        // wall-clock watchdog configured the wait escalates twice: at
        // the soft deadline it requests a cooperative abort through the
        // scheduler gate, and at the hard deadline (soft + grace) it
        // abandons the run outright — the only way out when every
        // goroutine is stuck outside runtime primitives.
        {
            let mut s = rt.state.lock();
            match iter_timeout_ms {
                None => {
                    while s.outcome.is_none() {
                        rt.done_cv.wait(&mut s);
                    }
                }
                Some(timeout_ms) => {
                    let started = s.started;
                    let soft = started + Duration::from_millis(timeout_ms);
                    let hard = soft + Duration::from_millis((timeout_ms / 4).clamp(10, 1_000));
                    while s.outcome.is_none() {
                        let now = Instant::now();
                        if now >= hard {
                            let elapsed_ms = started.elapsed().as_millis() as u64;
                            if let Some(m) = s.monitor() {
                                m.on_timeout(TimeoutPhase::Wedged, elapsed_ms);
                            }
                            s.set_outcome(RunOutcome::TimedOut {
                                phase: TimeoutPhase::Wedged,
                                elapsed_ms,
                            });
                            break;
                        }
                        if now >= soft {
                            s.timeout_requested = true;
                            rt.done_cv.wait_for(&mut s, hard - now);
                        } else {
                            rt.done_cv.wait_for(&mut s, soft - now);
                        }
                    }
                }
            }
            s.shutdown = true;
            for slot in &s.slots {
                slot.parker.shutdown();
            }
            s.emit(Gid::RUNTIME, EventKind::ProcStop, None);
        }
        // Wait for every goroutine job to finish (the shutdown unwind
        // above releases them all). A goroutine wedged outside runtime
        // primitives would historically hang the join loop forever; now
        // a teardown deadline abandons it — its worker thread is simply
        // never reused, and the pool replaces it on the next checkout.
        {
            let timeout_ms = std::env::var("GOAT_TEARDOWN_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(5_000);
            let deadline = Instant::now() + Duration::from_millis(timeout_ms);
            let mut n = rt.threads.lock();
            while *n > 0 {
                let now = Instant::now();
                if now >= deadline {
                    // Deadline expired with goroutine jobs still running:
                    // they are abandoned (their host threads are never
                    // returned to the pool).
                    if pooled {
                        crate::pool::note_abandoned(*n);
                    }
                    break;
                }
                rt.threads_cv.wait_for(&mut n, deadline - now);
            }
        }

        // Collect results. Closing the trace buffer drops any straggler
        // append from an abandoned goroutine; the collected event vector
        // moves into the ECT wholesale (no per-event re-push) and the
        // campaign merge loop recycles it.
        let (trace, fingerprint) = rt.tb.take();
        let mut s = rt.state.lock();
        let outcome = s.outcome.clone().expect("outcome set before teardown");
        let ect = trace.map(Ect::from_events);
        let alive_at_end: Vec<AliveGoroutine> = s
            .alive_snapshot
            .take()
            .unwrap_or_default()
            .into_iter()
            .filter(|a| !a.internal)
            .collect();
        let schedule = ReplayLog { decisions: std::mem::take(&mut s.decision_log) };
        let panic_detail = s.panic_detail.take();
        let result = RunResult {
            outcome,
            panic_detail,
            ect,
            fingerprint,
            steps: s.steps,
            vclock: VTime(s.clock),
            goroutines: s.slots.iter().filter(|g| !g.internal).count() as u64,
            yields_injected: s.yields_injected,
            priority_changes: s.strategy.priority_changes(),
            alive_at_end,
            schedule,
            replay_diverged: s.replay_diverged,
            sched: s.counters,
        };
        let seed = s.cfg.seed;
        drop(s);
        if goat_metrics::enabled() {
            report_run_telemetry(seed, &result);
        }
        result
    }
}

/// Per-run scheduler summary exported to the JSONL telemetry stream.
#[derive(serde::Serialize)]
struct SchedulerEvent {
    kind: &'static str,
    seed: u64,
    outcome: String,
    steps: u64,
    vclock_ns: u64,
    goroutines: u64,
    yields_injected: u32,
    picks: u64,
    random_picks: u64,
    blocks: u64,
    unblocks: u64,
    yields_preempt: u64,
    yields_gosched: u64,
    timer_fires: u64,
    select_choices: u64,
}

/// Per-run worker-pool snapshot exported to the JSONL telemetry stream.
#[derive(serde::Serialize)]
struct PoolEvent {
    kind: &'static str,
    threads_spawned: u64,
    jobs_reused: u64,
    idle_now: usize,
    workers_retired: u64,
    abandoned: u64,
    workers_replaced: u64,
}

/// Report one finished run into the global registry and the JSONL sink.
/// Off the hot path: called once per run teardown, and only when
/// [`goat_metrics::enabled`].
#[cold]
fn report_run_telemetry(seed: u64, r: &RunResult) {
    let label = goat_metrics::context();
    let reg = goat_metrics::global();
    reg.counter_with("runtime.runs", label.as_deref()).inc();
    reg.counter_with("sched.picks", label.as_deref()).add(r.sched.picks);
    reg.counter_with("sched.random_picks", label.as_deref()).add(r.sched.random_picks);
    reg.counter_with("sched.blocks", label.as_deref()).add(r.sched.blocks);
    reg.counter_with("sched.unblocks", label.as_deref()).add(r.sched.unblocks);
    reg.counter_with("sched.yields_injected", label.as_deref()).add(r.yields_injected as u64);
    match &r.outcome {
        RunOutcome::TimedOut { .. } => {
            reg.counter_with("supervision.timeouts", label.as_deref()).inc()
        }
        RunOutcome::InfraFailure { .. } => {
            reg.counter_with("supervision.infra_failures", label.as_deref()).inc()
        }
        _ => {}
    }
    reg.histogram("run.steps").record(r.steps);
    goat_metrics::emit(&SchedulerEvent {
        kind: "scheduler",
        seed,
        outcome: r.outcome.to_string(),
        steps: r.steps,
        vclock_ns: r.vclock.0,
        goroutines: r.goroutines,
        yields_injected: r.yields_injected,
        picks: r.sched.picks,
        random_picks: r.sched.random_picks,
        blocks: r.sched.blocks,
        unblocks: r.sched.unblocks,
        yields_preempt: r.sched.yields_preempt,
        yields_gosched: r.sched.yields_gosched,
        timer_fires: r.sched.timer_fires,
        select_choices: r.sched.select_choices,
    });
    let p = crate::pool::stats();
    goat_metrics::emit(&PoolEvent {
        kind: "pool",
        threads_spawned: p.threads_spawned,
        jobs_reused: p.jobs_reused,
        idle_now: p.idle_now,
        workers_retired: p.workers_retired,
        abandoned: p.abandoned,
        workers_replaced: p.workers_replaced,
    });
    goat_metrics::flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_main_completes() {
        let r = Runtime::run(Config::new(0), || {});
        assert!(r.outcome.is_completed());
        assert!(r.clean());
        assert_eq!(r.goroutines, 1);
        let ect = r.ect.expect("traced");
        assert!(ect.well_formed().is_ok(), "{:?}", ect.well_formed());
        // main's final event is the trace-stopping GoSched
        let last = ect.last_event_of(Gid::MAIN).expect("main events");
        assert_eq!(last.kind, EventKind::GoSched { trace_stop: true });
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            Runtime::run(Config::new(seed), || {
                for _ in 0..3 {
                    gosched();
                }
            })
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(a.ect.unwrap().render(), b.ect.unwrap().render());
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn spawned_goroutine_runs_and_ends() {
        let r = Runtime::run(Config::new(1).with_native_preempt_prob(0.0), || {
            go_named("child", || {});
            // give the child a chance to run (cooperative scheduling)
            gosched();
        });
        assert!(r.outcome.is_completed());
        assert!(r.clean());
        let ect = r.ect.unwrap();
        assert!(ect.well_formed().is_ok());
        let child = ect
            .goroutines()
            .iter()
            .copied()
            .find(|g| *g != Gid::MAIN && *g != Gid::RUNTIME)
            .expect("child in trace");
        assert_eq!(ect.last_event_of(child).unwrap().kind, EventKind::GoEnd);
    }

    #[test]
    fn runnable_children_drain_after_main_exits() {
        let r = Runtime::run(Config::new(1).with_native_preempt_prob(0.0), || {
            go_named("late-finisher", || {});
            // main returns immediately; the grace drain still lets the
            // runnable child run to completion (as Go's real scheduler
            // would have, racing main's exit).
        });
        assert!(r.outcome.is_completed());
        assert!(r.clean(), "{:?}", r.alive_at_end);
    }

    #[test]
    fn blocked_child_is_reported_alive() {
        let r = Runtime::run(Config::new(1).with_native_preempt_prob(0.0), || {
            let (never_tx, never_rx) = {
                let ch = crate::chan::Chan::<u8>::new(0);
                (ch.clone(), ch)
            };
            go_named("leaker", move || {
                never_rx.recv(); // blocks forever
            });
            gosched();
            drop(never_tx);
        });
        assert!(r.outcome.is_completed());
        assert_eq!(r.alive_at_end.len(), 1);
        assert_eq!(r.alive_at_end[0].name, "leaker");
        assert!(r.alive_at_end[0].state.contains("recv"), "{:?}", r.alive_at_end);
        assert!(!r.clean());
    }

    #[test]
    fn user_panic_becomes_panicked_outcome() {
        let r = Runtime::run(Config::new(0), || {
            gopanic("boom");
        });
        match r.outcome {
            RunOutcome::Panicked { g, ref msg } => {
                assert_eq!(g, Gid::MAIN);
                assert_eq!(msg, "boom");
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn panic_in_child_crashes_program() {
        let r = Runtime::run(Config::new(1).with_native_preempt_prob(0.0), || {
            go(|| gopanic("child-crash"));
            gosched();
            gosched();
        });
        assert!(matches!(r.outcome, RunOutcome::Panicked { .. }));
    }

    #[test]
    fn step_limit_catches_infinite_yield_loop() {
        let r = Runtime::run(Config::new(0).with_max_steps(500), || loop {
            gosched();
        });
        assert_eq!(r.outcome, RunOutcome::StepLimit);
    }

    #[test]
    fn yields_injected_respect_bound() {
        for d in [0u32, 1, 2, 4] {
            // Budgeted yield injection is native-strategy behaviour.
            let cfg = Config::new(3)
                .with_delay_bound(d)
                .with_yield_prob(1.0)
                .with_strategy(StrategyKind::Native);
            let r = Runtime::run(cfg, || {
                for _ in 0..10 {
                    go(|| {});
                }
                gosched();
            });
            assert!(r.yields_injected <= d, "injected {} > bound {d}", r.yields_injected);
            if d > 0 {
                assert!(r.yields_injected > 0, "bound {d} should inject at least one yield");
            }
        }
    }

    #[test]
    fn trace_disabled_produces_no_ect() {
        let r = Runtime::run(Config::new(0).with_trace(false), || {});
        assert!(r.ect.is_none());
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn replay_reproduces_the_exact_interleaving() {
        use crate::chan::Chan;
        let program = || {
            let ch: Chan<u32> = Chan::new(0);
            let tx = ch.clone();
            go_named("tx", move || tx.send(1));
            let ch2: Chan<u32> = Chan::new(0);
            let tx2 = ch2.clone();
            go_named("tx2", move || tx2.send(2));
            ch.recv();
            ch2.recv();
        };
        let original = Runtime::run(Config::new(11).with_delay_bound(2), program);
        assert!(original.clean());
        let log = original.schedule.clone();
        assert!(!log.is_empty());
        // Replay with a DIFFERENT seed: the log, not the RNG, must drive.
        let replayed =
            Runtime::run(Config::new(999_999).with_delay_bound(2).with_replay(log), program);
        assert!(!replayed.replay_diverged, "same program must follow its log");
        assert_eq!(
            original.ect.unwrap().render(),
            replayed.ect.unwrap().render(),
            "replay must reproduce the exact trace"
        );
    }

    #[test]
    fn replay_divergence_is_detected_and_survivable() {
        let log = Runtime::run(Config::new(1), || {
            go_named("a", || {});
            gosched();
        })
        .schedule;
        // Replay the log against a different program.
        let r = Runtime::run(Config::new(1).with_replay(log), || {
            go_named("a", || {});
            go_named("b", || {});
            gosched();
            gosched();
            gosched();
        });
        assert!(r.replay_diverged);
        assert!(r.outcome.is_completed(), "divergence falls back to native scheduling");
    }

    #[test]
    fn uniform_random_policy_explores_more() {
        use crate::config::SchedPolicy;
        let fingerprints: std::collections::BTreeSet<String> = (0..10u64)
            .map(|seed| {
                let r =
                    Runtime::run(Config::new(seed).with_policy(SchedPolicy::UniformRandom), || {
                        for _ in 0..4 {
                            go_named("w", || gosched());
                        }
                        gosched();
                        gosched();
                    });
                assert!(r.outcome.is_completed());
                r.ect.unwrap().render()
            })
            .collect();
        assert!(fingerprints.len() > 1, "random policy must vary schedules");
    }

    #[test]
    fn decision_log_is_recorded_on_every_run() {
        let r = Runtime::run(Config::new(0), || {
            go_named("w", || {});
            gosched();
        });
        // At least: pick(main), yield decisions for go/gosched, pick(w)…
        assert!(r.schedule.len() >= 3, "{:?}", r.schedule);
        assert!(!r.replay_diverged);
    }

    #[test]
    fn goroutine_tree_from_runtime_trace() {
        let r = Runtime::run(Config::new(2).with_native_preempt_prob(0.0), || {
            go_named("worker", || {
                go_named("nested", || {});
                gosched();
            });
            gosched();
            gosched();
            gosched();
        });
        let ect = r.ect.unwrap();
        let tree = goat_trace::GTree::from_ect(&ect);
        let worker = tree.nodes().find(|n| n.name == "worker").expect("worker node");
        assert_eq!(worker.parent, Some(Gid::MAIN));
        let nested = tree.nodes().find(|n| n.name == "nested").expect("nested");
        assert_eq!(nested.parent, Some(worker.g));
    }
}
