//! # goat-runtime — a deterministic Go-style concurrency runtime
//!
//! The substrate of the GoAT reproduction: everything the paper assumes
//! from the Go language and its patched runtime, rebuilt as a library.
//!
//! * **Goroutines** — [`go`]/[`go_named`] spawn concurrent functions;
//!   a single-token cooperative scheduler with a FIFO global run queue
//!   (plus Go-style preemption noise ε) decides who runs.
//! * **Channels** — [`Chan`] gives rendezvous and buffered channels with
//!   Go's close semantics; [`Select`] implements `select` with
//!   pseudo-random ready-case choice and `default`.
//! * **Sync** — [`Mutex`], [`RwLock`], [`WaitGroup`], [`Cond`] with Go
//!   semantics (non-reentrant locks, write-preferring RWMutex, …).
//! * **Virtual time** — [`time::sleep`]/[`time::after`] run against a
//!   logical clock, so timeouts are deterministic and instant.
//! * **Tracing** — every primitive emits execution-concurrency-trace
//!   events (see `goat-trace`) tagged with its CU source location
//!   captured via `#[track_caller]`.
//! * **Perturbation** — with [`Config::delay_bound`] `D > 0` the runtime
//!   runs the paper's `goat.handler()` in front of every CU, randomly
//!   yielding up to `D` times per run to shake rare interleavings loose.
//!
//! ## Quickstart
//!
//! ```
//! use goat_runtime::{Runtime, Config, go, Chan};
//!
//! let result = Runtime::run(Config::new(42), || {
//!     let ch: Chan<String> = Chan::new(0);
//!     let tx = ch.clone();
//!     go(move || tx.send("hello from a goroutine".to_string()));
//!     let msg = ch.recv().expect("value");
//!     assert!(msg.contains("hello"));
//! });
//! assert!(result.clean());
//! let ect = result.ect.expect("tracing on by default");
//! assert!(ect.well_formed().is_ok());
//! ```
//!
//! Runs are **deterministic**: the same seed replays the same
//! interleaving, the same select choices and the same injected yields.

#![warn(missing_docs)]

mod chan;
mod config;
/// Go-style cancellation contexts.
pub mod context;
/// Deterministic fault injection (`GOAT_FAULT`) for supervision tests.
pub mod faultpoint;
mod monitor;
/// Adaptive spin-then-park token-handoff parker.
pub mod park;
/// Shared goroutine worker-thread pool (statistics surface).
pub mod pool;
mod rt;
mod select;
/// Pluggable scheduling strategies (`GOAT_STRATEGY`).
pub mod strategy;
mod sync;
/// Virtual-time utilities (`sleep`, `after`, `Ticker`).
pub mod time;

pub use chan::{Chan, RangeIter};
pub use config::{
    AliveGoroutine, Config, CrashForensics, Decision, ReplayLog, RunOutcome, RunResult,
    SchedCounters, SchedPolicy, TimeoutPhase,
};
pub use monitor::{Monitor, NullMonitor};
pub use rt::{gid, go, go_internal, go_named, gosched, Runtime};
pub use select::Select;
pub use strategy::StrategyKind;
pub use sync::{Cond, Mutex, Once, RwLock, WaitGroup};

#[cfg(test)]
mod api_tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Chan<u64>>();
        assert_send::<Mutex>();
        assert_send::<RwLock>();
        assert_send::<WaitGroup>();
        assert_send::<Cond>();
        assert_send::<context::Context>();
        assert_send::<Config>();
        assert_send::<RunResult>();
    }

    #[test]
    fn public_types_are_debug() {
        let cfg = Config::new(0);
        assert!(!format!("{cfg:?}").is_empty());
        let r = Runtime::run(cfg, || {
            let ch: Chan<u8> = Chan::new(1);
            let mu = Mutex::new();
            let rw = RwLock::new();
            let wg = WaitGroup::new();
            let cv = Cond::new(&mu);
            let (ctx, canceler) = context::Context::with_cancel();
            for s in [
                format!("{ch:?}"),
                format!("{mu:?}"),
                format!("{rw:?}"),
                format!("{wg:?}"),
                format!("{cv:?}"),
                format!("{ctx:?}"),
                format!("{canceler:?}"),
                format!("{:?}", Select::<()>::new()),
            ] {
                assert!(!s.is_empty());
            }
        });
        assert!(r.clean());
        assert!(!format!("{r:?}").is_empty());
    }
}
