//! A minimal Go-style `context`: cancellation signals propagated through
//! a done channel. Many GoKer kernels (grpc, kubernetes, moby) leak
//! goroutines precisely because a context's done channel is the only way
//! out of a blocked select — so the benchmark needs a faithful one.

use crate::chan::Chan;
use crate::rt::{current, Sched, TimerTarget};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CtxInner {
    done: Chan<()>,
    cancelled: AtomicBool,
}

/// A cancellation context. Cloning shares the context.
///
/// ```
/// use goat_runtime::{Runtime, Config, go, gosched, Select, Chan, context::Context};
/// let r = Runtime::run(Config::new(0), || {
///     let (ctx, cancel) = Context::with_cancel();
///     let work: Chan<u32> = Chan::new(0);
///     let ctx2 = ctx.clone();
///     go(move || {
///         let stopped = Select::new()
///             .recv(&work, |_| false)
///             .recv(ctx2.done(), |_| true)
///             .run();
///         assert!(stopped);
///     });
///     cancel.cancel();
///     gosched(); // let the worker observe the cancellation
/// });
/// assert!(r.clean());
/// ```
#[derive(Clone)]
pub struct Context {
    inner: Arc<CtxInner>,
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context").field("cancelled", &self.is_cancelled()).finish()
    }
}

/// Cancels the context it was created with (idempotent).
#[derive(Clone)]
pub struct Canceler {
    inner: Arc<CtxInner>,
}

impl std::fmt::Debug for Canceler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Canceler").finish_non_exhaustive()
    }
}

impl Canceler {
    /// Cancel the context, closing its done channel. Safe to call more
    /// than once (unlike closing a channel directly).
    #[track_caller]
    pub fn cancel(&self) {
        if !self.inner.cancelled.swap(true, Ordering::SeqCst) {
            self.inner.done.close();
        }
    }
}

struct DeadlineTarget {
    inner: Arc<CtxInner>,
}

impl TimerTarget for DeadlineTarget {
    fn fire(&self, s: &mut Sched) {
        if !self.inner.cancelled.swap(true, Ordering::SeqCst) {
            self.inner.done.core().close_internal(s);
        }
    }
}

impl Context {
    /// A never-cancelled root context.
    ///
    /// # Panics
    /// Panics when called outside a goroutine.
    pub fn background() -> Context {
        Context {
            inner: Arc::new(CtxInner { done: Chan::new(0), cancelled: AtomicBool::new(false) }),
        }
    }

    /// A cancellable context plus its [`Canceler`].
    pub fn with_cancel() -> (Context, Canceler) {
        let ctx = Context::background();
        let canceler = Canceler { inner: Arc::clone(&ctx.inner) };
        (ctx, canceler)
    }

    /// A context that cancels itself after `d` of virtual time.
    pub fn with_timeout(d: Duration) -> (Context, Canceler) {
        let (ctx, canceler) = Context::with_cancel();
        let rt_ctx = current();
        let mut s = rt_ctx.rt.state.lock();
        s.add_timer_fire(
            d.as_nanos() as u64,
            Arc::new(DeadlineTarget { inner: Arc::clone(&ctx.inner) }),
        );
        drop(s);
        (ctx, canceler)
    }

    /// The done channel: closed when the context is cancelled. Use as a
    /// select case or receive from it directly to wait for cancellation.
    pub fn done(&self) -> &Chan<()> {
        &self.inner.done
    }

    /// Has the context been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, RunOutcome};
    use crate::rt::{go, Runtime};
    use crate::select::Select;

    fn cfg(seed: u64) -> Config {
        Config::new(seed).with_native_preempt_prob(0.0)
    }

    #[test]
    fn cancel_unblocks_waiter() {
        let r = Runtime::run(cfg(0), || {
            let (ctx, cancel) = Context::with_cancel();
            let ctx2 = ctx.clone();
            go(move || {
                assert_eq!(ctx2.done().recv(), None); // closed
            });
            cancel.cancel();
            crate::rt::gosched(); // let the waiter observe the close
            assert!(ctx.is_cancelled());
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn cancel_is_idempotent() {
        let r = Runtime::run(cfg(0), || {
            let (_ctx, cancel) = Context::with_cancel();
            cancel.cancel();
            cancel.cancel(); // no double-close panic
        });
        assert!(r.clean());
    }

    #[test]
    fn timeout_cancels_blocked_select() {
        let r = Runtime::run(cfg(0), || {
            let (ctx, _cancel) = Context::with_timeout(Duration::from_millis(10));
            let never: Chan<u32> = Chan::new(0);
            let timed_out = Select::new().recv(&never, |_| false).recv(ctx.done(), |_| true).run();
            assert!(timed_out);
            assert!(ctx.is_cancelled());
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn forgotten_cancel_leaks_waiter() {
        // The archetypal context leak: a goroutine waits on ctx.done()
        // but nobody ever cancels.
        let r = Runtime::run(cfg(0), || {
            let (ctx, _cancel) = Context::with_cancel();
            go(move || {
                ctx.done().recv();
            });
            crate::rt::gosched();
        });
        assert!(matches!(r.outcome, RunOutcome::Completed));
        assert_eq!(r.alive_at_end.len(), 1, "waiter leaked");
    }
}
