//! Adaptive spin-then-park token handoff.
//!
//! Every scheduling decision hands the run token from one goroutine
//! thread to another through a [`Parker`]. The original parker was a
//! plain mutex + condvar: each handoff paid two futex round-trips (the
//! parker's `notify_one` plus the waiter's `wait`) even when the
//! successor was granted the token microseconds after it started
//! waiting — the common case in a tight campaign loop, where the
//! previous holder picks the successor while it is still on-CPU.
//!
//! This parker spins first: a bounded number of rounds of
//! [`std::hint::spin_loop`] with exponentially growing pause batches,
//! consuming the grant with a single atomic exchange when it lands
//! during the spin window. Only when the window expires does it fall
//! back to the condvar. Symmetrically, [`Parker::grant`] is futex-free
//! whenever the consumer is still spinning: it only locks the mutex and
//! notifies when the consumer has already declared itself `PARKED`.
//!
//! The spin budget comes from [`crate::Config::spin`] (the `GOAT_SPIN`
//! environment knob / `-spin` CLI flag); `0` disables spinning and
//! reproduces the original park-only behaviour bit-for-bit — handoff
//! order is decided by the scheduler under its lock, never by who wins
//! a spin, so traces are byte-identical at every spin setting.
//!
//! Spinning pays off only when the granting thread can run *while* the
//! consumer spins, i.e. on a multi-core host; on a single CPU the spin
//! window merely delays the granter, so the env-unset default resolves
//! to 0 there (see `Config::spin`).

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The run token was granted to the parked goroutine.
const GRANTED: u32 = 1;
/// The runtime is shutting down; the parked goroutine must unwind.
const SHUTDOWN: u32 = 2;
/// The consumer exhausted its spin budget and holds (or is about to
/// hold) the mutex waiting on the condvar; a producer must notify.
const PARKED: u32 = 4;

/// One goroutine's token mailbox: exactly one thread parks on it, and
/// per park cycle exactly one producer grants (the scheduler's token
/// discipline guarantees both).
pub struct Parker {
    state: AtomicU32,
    /// Spin rounds before falling back to the condvar (0 = park only).
    spin: u32,
    m: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    /// A fresh parker with the given spin budget.
    pub fn new(spin: u32) -> Arc<Parker> {
        Arc::new(Parker { state: AtomicU32::new(0), spin, m: Mutex::new(()), cv: Condvar::new() })
    }

    /// Try to consume a pending grant or shutdown without blocking.
    /// `Some(Ok(()))` = token granted, `Some(Err(()))` = shutdown,
    /// `None` = nothing pending.
    #[inline]
    fn try_consume(&self) -> Option<Result<(), ()>> {
        let st = self.state.load(Ordering::Acquire);
        // Shutdown wins over a grant, matching the condvar parker.
        if st & SHUTDOWN != 0 {
            return Some(Err(()));
        }
        if st & GRANTED != 0 {
            // Sole consumer + one grant per cycle: clearing the bits
            // cannot race another consume.
            self.state.fetch_and(!(GRANTED | PARKED), Ordering::AcqRel);
            return Some(Ok(()));
        }
        None
    }

    /// Wait for the run token. `Err(())` means the runtime is shutting
    /// down and the goroutine must unwind.
    // Err carries no information beyond "shutdown" by design; a
    // dedicated error type would just restate the doc above.
    #[allow(clippy::result_unit_err)]
    pub fn park(&self) -> Result<(), ()> {
        // Spin phase: poll with exponentially growing pause batches so
        // a grant landing within the window is consumed without any
        // futex traffic on either side.
        let mut pause = 1u32;
        for _ in 0..self.spin {
            if let Some(r) = self.try_consume() {
                return r;
            }
            for _ in 0..pause {
                std::hint::spin_loop();
            }
            pause = (pause * 2).min(64);
        }
        // Park phase. PARKED must be published *before* re-checking the
        // state (both under the mutex): a producer that grants between
        // our check and the wait sees PARKED and takes the mutex to
        // notify, which cannot complete until we are inside `cv.wait`.
        let mut g = self.m.lock();
        loop {
            self.state.fetch_or(PARKED, Ordering::AcqRel);
            if let Some(r) = self.try_consume() {
                return r;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Grant the run token to the parked (or spinning) goroutine.
    pub fn grant(&self) {
        self.signal(GRANTED);
    }

    /// Wake the goroutine for runtime shutdown; its `park` returns
    /// `Err(())`.
    pub fn shutdown(&self) {
        self.signal(SHUTDOWN);
    }

    #[inline]
    fn signal(&self, bit: u32) {
        let prev = self.state.fetch_or(bit, Ordering::Release);
        if prev & PARKED != 0 {
            // The consumer is (or is about to be) on the condvar; the
            // empty critical section orders us after its PARKED|check
            // sequence so the notify can't be lost.
            drop(self.m.lock());
            self.cv.notify_one();
        }
    }
}

impl std::fmt::Debug for Parker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parker")
            .field("state", &self.state.load(Ordering::Relaxed))
            .field("spin", &self.spin)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn grant_before_park_is_consumed_immediately() {
        for spin in [0u32, 100] {
            let p = Parker::new(spin);
            p.grant();
            assert_eq!(p.park(), Ok(()));
        }
    }

    #[test]
    fn shutdown_wins_over_grant() {
        let p = Parker::new(100);
        p.grant();
        p.shutdown();
        assert_eq!(p.park(), Err(()));
    }

    #[test]
    fn delayed_grant_wakes_a_parked_thread() {
        let p = Parker::new(0);
        let q = Arc::clone(&p);
        let h = std::thread::spawn(move || q.park());
        std::thread::sleep(Duration::from_millis(20));
        p.grant();
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn delayed_shutdown_wakes_a_spinning_thread() {
        let p = Parker::new(1_000_000);
        let q = Arc::clone(&p);
        let h = std::thread::spawn(move || q.park());
        std::thread::sleep(Duration::from_millis(5));
        p.shutdown();
        assert_eq!(h.join().unwrap(), Err(()));
    }
}
