//! Pluggable scheduling strategies (`GOAT_STRATEGY` / `-strategy`).
//!
//! The scheduler's nondeterministic choices — which runnable goroutine
//! receives the run token, and whether the yield handler in front of a
//! CU fires — are delegated to a [`Strategy`] object selected per run.
//! Three strategies exist:
//!
//! * **native** — Go-like FIFO with probability-ε preemption noise and
//!   the paper's delay-bounded yield injection (the default; exactly
//!   the pre-strategy behaviour, byte-for-byte).
//! * **random** — uniform random choice among runnable goroutines at
//!   every handoff (the historical [`SchedPolicy::UniformRandom`],
//!   which still selects this strategy for compatibility).
//! * **pct** — PCT-style priority scheduling (Burckhardt et al.): each
//!   goroutine draws a random priority at spawn, the scheduler always
//!   runs the highest-priority runnable goroutine, and `depth − 1`
//!   priority-change points sampled over the first `length` CU
//!   operations demote the *currently running* goroutine below every
//!   initial priority, forcing a context switch. No budgeted yields and
//!   no ε noise: all schedule diversity comes from the priorities.
//!
//! Every choice a strategy makes is still recorded in the scheduler's
//! decision log, so schedule-forcing replay is strategy-agnostic: a
//! trace produced under any strategy replays byte-identically through
//! [`SchedPolicy::Replay`] without knowing which strategy produced it.
//!
//! [`SchedPolicy::UniformRandom`]: crate::SchedPolicy::UniformRandom
//! [`SchedPolicy::Replay`]: crate::SchedPolicy::Replay

use goat_trace::Gid;
use rand::{Rng, SmallRng};
use std::collections::VecDeque;
use std::fmt;

/// Default PCT depth `d` (number of priority bands below which change
/// points demote; `d − 1` change points are sampled).
pub const PCT_DEFAULT_DEPTH: u32 = 3;
/// Default PCT length `k` (the operation-count window over which change
/// points are sampled).
pub const PCT_DEFAULT_LENGTH: u32 = 512;

/// Which pluggable scheduling strategy drives a run.
///
/// Parsed from `GOAT_STRATEGY` (`native`, `random`, `pct`,
/// `pct:<depth>`, `pct:<depth>:<length>`); the unset default is
/// [`StrategyKind::Native`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum StrategyKind {
    /// FIFO + ε preemption noise + delay-bounded yield injection.
    #[default]
    Native,
    /// Uniform random pick among runnable goroutines at every handoff.
    Random,
    /// PCT-style random-priority scheduling with `depth − 1` priority
    /// change points over a `length`-operation window.
    Pct {
        /// Priority depth `d`: at most `d − 1` priority changes occur.
        depth: u32,
        /// Operation window `k` over which change points are sampled.
        length: u32,
    },
}

impl StrategyKind {
    /// Parse a strategy spec: `native`, `random`, `pct`,
    /// `pct:<depth>`, or `pct:<depth>:<length>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or("").to_ascii_lowercase();
        match head.as_str() {
            "native" => Ok(StrategyKind::Native),
            "random" => Ok(StrategyKind::Random),
            "pct" => {
                let depth = match parts.next() {
                    None | Some("") => PCT_DEFAULT_DEPTH,
                    Some(d) => d
                        .parse::<u32>()
                        .ok()
                        .filter(|&d| d >= 1)
                        .ok_or_else(|| format!("bad pct depth {d:?} in {spec:?}"))?,
                };
                let length = match parts.next() {
                    None | Some("") => PCT_DEFAULT_LENGTH,
                    Some(l) => l
                        .parse::<u32>()
                        .ok()
                        .filter(|&l| l >= 1)
                        .ok_or_else(|| format!("bad pct length {l:?} in {spec:?}"))?,
                };
                if parts.next().is_some() {
                    return Err(format!("trailing fields in strategy spec {spec:?}"));
                }
                Ok(StrategyKind::Pct { depth, length })
            }
            _ => Err(format!(
                "unknown strategy {spec:?} (expected native, random, or pct[:depth[:length]])"
            )),
        }
    }

    /// The process-wide `GOAT_STRATEGY` default, read once. Unset or
    /// unparseable values fall back to [`StrategyKind::Native`].
    pub fn from_env() -> Self {
        use std::sync::OnceLock;
        static KIND: OnceLock<StrategyKind> = OnceLock::new();
        *KIND.get_or_init(|| {
            std::env::var("GOAT_STRATEGY")
                .ok()
                .and_then(|v| StrategyKind::parse(&v).ok())
                .unwrap_or(StrategyKind::Native)
        })
    }

    /// Short name without knobs (`native` / `random` / `pct`).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Native => "native",
            StrategyKind::Random => "random",
            StrategyKind::Pct { .. } => "pct",
        }
    }

    /// Instantiate the per-run strategy state. Native and random build
    /// without consuming RNG draws (preserving byte-identity with the
    /// pre-strategy scheduler); PCT samples its change points here.
    pub(crate) fn build(self, rng: &mut SmallRng) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Native => Box::new(NativeStrategy),
            StrategyKind::Random => Box::new(RandomStrategy),
            StrategyKind::Pct { depth, length } => Box::new(PctStrategy::new(depth, length, rng)),
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Native => write!(f, "native"),
            StrategyKind::Random => write!(f, "random"),
            StrategyKind::Pct { depth, length } => write!(f, "pct:{depth}:{length}"),
        }
    }
}

/// What the yield handler in front of a CU should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldChoice {
    /// Yield and consume one unit of the delay budget `D`.
    Inject,
    /// Yield without touching the budget (ε noise / PCT change point).
    Preempt,
    /// Keep running.
    Run,
}

/// Immutable context handed to [`Strategy::decide_yield`].
pub(crate) struct YieldCtx {
    pub delay_bound: u32,
    pub yields_injected: u32,
    pub yield_prob: f64,
    pub native_preempt_prob: f64,
    pub runq_nonempty: bool,
}

/// A pluggable scheduling strategy: owns all per-run exploration state
/// (PCT priorities, change points, …) and is consulted at the two
/// nondeterministic points of the scheduler. The scheduler records the
/// resulting decisions in its log, so strategies never see replay.
pub(crate) trait Strategy: Send {
    /// A goroutine was created (main, spawned, or runtime-internal).
    fn on_spawn(&mut self, _g: Gid, _rng: &mut SmallRng) {}

    /// Choose the run-queue index to hand the token to. The bool marks
    /// a deviation from FIFO (feeds the `random_picks` counter).
    /// `runq` is non-empty.
    fn pick(&mut self, runq: &VecDeque<Gid>, native_eps: f64, rng: &mut SmallRng) -> (usize, bool);

    /// Should the yield handler fire in front of the CU that goroutine
    /// `g` is about to execute?
    fn decide_yield(&mut self, g: Gid, ctx: &YieldCtx, rng: &mut SmallRng) -> YieldChoice;

    /// Priority changes performed so far (PCT only; 0 elsewhere).
    fn priority_changes(&self) -> u32 {
        0
    }
}

/// Shared budget/ε yield logic of the native and random strategies —
/// draw-for-draw identical to the pre-strategy scheduler.
fn budgeted_yield(ctx: &YieldCtx, rng: &mut SmallRng) -> YieldChoice {
    let inject = ctx.delay_bound > ctx.yields_injected
        && ctx.delay_bound > 0
        && ctx.yield_prob > 0.0
        && rng.gen_bool(ctx.yield_prob);
    if inject {
        YieldChoice::Inject
    } else if ctx.native_preempt_prob > 0.0
        && ctx.runq_nonempty
        && rng.gen_bool(ctx.native_preempt_prob)
    {
        // Go's asynchronous preemption: any call site can lose the
        // processor with small probability ε.
        YieldChoice::Preempt
    } else {
        YieldChoice::Run
    }
}

/// Go-like native scheduling: FIFO with ε preemption noise.
struct NativeStrategy;

impl Strategy for NativeStrategy {
    fn pick(&mut self, runq: &VecDeque<Gid>, native_eps: f64, rng: &mut SmallRng) -> (usize, bool) {
        if runq.len() > 1 && native_eps > 0.0 && rng.gen_bool(native_eps) {
            (rng.gen_range(0..runq.len()), true)
        } else {
            (0, false)
        }
    }

    fn decide_yield(&mut self, _g: Gid, ctx: &YieldCtx, rng: &mut SmallRng) -> YieldChoice {
        budgeted_yield(ctx, rng)
    }
}

/// Uniform random pick at every handoff.
struct RandomStrategy;

impl Strategy for RandomStrategy {
    fn pick(
        &mut self,
        runq: &VecDeque<Gid>,
        _native_eps: f64,
        rng: &mut SmallRng,
    ) -> (usize, bool) {
        if runq.len() > 1 {
            (rng.gen_range(0..runq.len()), true)
        } else {
            (0, false)
        }
    }

    fn decide_yield(&mut self, _g: Gid, ctx: &YieldCtx, rng: &mut SmallRng) -> YieldChoice {
        budgeted_yield(ctx, rng)
    }
}

/// PCT-style priority scheduling.
///
/// Initial priorities are drawn uniformly from a *high band*
/// `[depth, u64::MAX)`; the `i`-th change point demotes the currently
/// running goroutine to priority `depth − 1 − i` (a strictly
/// descending *low band* `< depth`), so a demoted goroutine never runs
/// again while any undemoted goroutine is runnable, and later
/// demotions rank below earlier ones — the classic PCT construction.
/// At most `depth − 1` changes ever occur.
struct PctStrategy {
    depth: u32,
    /// Priority per goroutine, indexed by `gid − 1`.
    priorities: Vec<u64>,
    /// Sorted CU-operation indices at which priority changes fire.
    change_points: Vec<u64>,
    next_change: usize,
    /// CU operations seen so far (the PCT "length" axis).
    ops: u64,
    changes: u32,
}

impl PctStrategy {
    fn new(depth: u32, length: u32, rng: &mut SmallRng) -> Self {
        let depth = depth.max(1);
        let window = length.max(1) as u64;
        let mut change_points: Vec<u64> = (1..depth).map(|_| rng.gen_range(0..window)).collect();
        change_points.sort_unstable();
        PctStrategy {
            depth,
            priorities: Vec::new(),
            change_points,
            next_change: 0,
            ops: 0,
            changes: 0,
        }
    }

    fn prio(&self, g: Gid) -> u64 {
        self.priorities.get((g.0 - 1) as usize).copied().unwrap_or(0)
    }
}

impl Strategy for PctStrategy {
    fn on_spawn(&mut self, g: Gid, rng: &mut SmallRng) {
        let idx = (g.0 - 1) as usize;
        if self.priorities.len() <= idx {
            self.priorities.resize(idx + 1, 0);
        }
        self.priorities[idx] = rng.gen_range(self.depth as u64..u64::MAX / 2);
    }

    fn pick(
        &mut self,
        runq: &VecDeque<Gid>,
        _native_eps: f64,
        _rng: &mut SmallRng,
    ) -> (usize, bool) {
        let mut best = 0usize;
        let mut best_prio = self.prio(runq[0]);
        for (i, g) in runq.iter().enumerate().skip(1) {
            let p = self.prio(*g);
            // Strict '>' keeps ties FIFO (earliest queue position wins).
            if p > best_prio {
                best = i;
                best_prio = p;
            }
        }
        (best, best != 0)
    }

    fn decide_yield(&mut self, g: Gid, _ctx: &YieldCtx, _rng: &mut SmallRng) -> YieldChoice {
        let op = self.ops;
        self.ops += 1;
        if self.next_change < self.change_points.len() && op >= self.change_points[self.next_change]
        {
            self.next_change += 1;
            self.changes += 1;
            // Low band: depth − 1, depth − 2, … — each demotion ranks
            // below every initial priority and every earlier demotion.
            let idx = (g.0 - 1) as usize;
            if self.priorities.len() <= idx {
                self.priorities.resize(idx + 1, 0);
            }
            self.priorities[idx] = (self.depth - self.changes) as u64;
            YieldChoice::Preempt
        } else {
            YieldChoice::Run
        }
    }

    fn priority_changes(&self) -> u32 {
        self.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_specs() {
        assert_eq!(StrategyKind::parse("native").unwrap(), StrategyKind::Native);
        assert_eq!(StrategyKind::parse(" RANDOM ").unwrap(), StrategyKind::Random);
        assert_eq!(
            StrategyKind::parse("pct").unwrap(),
            StrategyKind::Pct { depth: PCT_DEFAULT_DEPTH, length: PCT_DEFAULT_LENGTH }
        );
        assert_eq!(
            StrategyKind::parse("pct:7").unwrap(),
            StrategyKind::Pct { depth: 7, length: PCT_DEFAULT_LENGTH }
        );
        assert_eq!(
            StrategyKind::parse("pct:7:99").unwrap(),
            StrategyKind::Pct { depth: 7, length: 99 }
        );
        assert!(StrategyKind::parse("pct:0").is_err());
        assert!(StrategyKind::parse("pct:1:2:3").is_err());
        assert!(StrategyKind::parse("bogus").is_err());
    }

    #[test]
    fn display_round_trips() {
        for spec in ["native", "random", "pct:4:128"] {
            let k = StrategyKind::parse(spec).unwrap();
            assert_eq!(StrategyKind::parse(&k.to_string()).unwrap(), k);
        }
    }

    #[test]
    fn pct_demotions_are_bounded_and_descending() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = PctStrategy::new(4, 8, &mut rng);
        for g in 1..=3u64 {
            s.on_spawn(Gid(g), &mut rng);
            assert!(s.prio(Gid(g)) >= 4, "initial priorities live in the high band");
        }
        let ctx = YieldCtx {
            delay_bound: 0,
            yields_injected: 0,
            yield_prob: 0.0,
            native_preempt_prob: 0.0,
            runq_nonempty: true,
        };
        let mut demoted = Vec::new();
        for op in 0..64 {
            let g = Gid(1 + (op % 3));
            if s.decide_yield(g, &ctx, &mut rng) == YieldChoice::Preempt {
                demoted.push(s.prio(g));
            }
        }
        assert!(s.priority_changes() <= 3, "at most depth − 1 changes");
        assert_eq!(demoted.len() as u32, s.priority_changes());
        for w in demoted.windows(2) {
            assert!(w[0] > w[1], "later demotions rank lower: {demoted:?}");
        }
        assert!(demoted.iter().all(|&p| p < 4), "demotions live in the low band");
    }
}
