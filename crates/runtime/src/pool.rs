//! Shared worker-thread pool for goroutine execution.
//!
//! Under the paper's campaign model a kernel is executed thousands of
//! times, and every iteration spawns every goroutine afresh. With one
//! OS thread per goroutine the dominant cost of small kernels becomes
//! `pthread_create`/`join`. This pool removes it: a worker thread is
//! checked out per goroutine, runs that goroutine's **entire
//! lifetime** (parking and unparking with the scheduler's token
//! machinery as usual), and returns to the idle stack when the
//! goroutine finishes or is unwound at teardown.
//!
//! Properties:
//!
//! * **Global and shared** — one process-wide pool serves all runtime
//!   instances, so campaign iterations and parallel campaign workers
//!   reuse each other's threads.
//! * **No semantic impact** — the scheduler's single-token discipline
//!   is unchanged; which thread hosts a goroutine is invisible to
//!   scheduling, tracing and replay. [`crate::Config::pool`] turns the
//!   pool off to get the historical thread-per-goroutine behaviour.
//! * **Bounded retention** — at most `GOAT_POOL_MAX_IDLE` workers
//!   (default 256) stay parked waiting for work; excess workers exit.
//! * **Wedge-proof** — a worker is returned only by its goroutine
//!   running to completion (normal exit or shutdown unwind). A worker
//!   wedged by a goroutine stuck outside runtime primitives is simply
//!   never returned; checkout falls back to spawning a fresh worker,
//!   so one bad run cannot drain the pool (see
//!   [`Runtime::run_monitored`](crate::Runtime)'s teardown timeout for
//!   the run-side fallback).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// An idle worker, addressed by the sending half of its job channel.
struct IdleWorker {
    job_tx: Sender<Job>,
}

/// The process-wide goroutine worker pool.
pub(crate) struct WorkerPool {
    idle: Mutex<Vec<IdleWorker>>,
    max_idle: usize,
    threads_spawned: AtomicU64,
    jobs_reused: AtomicU64,
    workers_retired: AtomicU64,
    abandoned: AtomicU64,
    workers_replaced: AtomicU64,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The global pool (created on first use).
pub(crate) fn global() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        let max_idle = std::env::var("GOAT_POOL_MAX_IDLE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(256);
        WorkerPool {
            idle: Mutex::new(Vec::new()),
            max_idle,
            threads_spawned: AtomicU64::new(0),
            jobs_reused: AtomicU64::new(0),
            workers_retired: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
        }
    })
}

/// Account `n` goroutine jobs abandoned at a runtime teardown deadline:
/// their host worker threads will never return to the idle stack. Each
/// abandoned worker is replaced by a freshly parked one (up to the idle
/// cap), so effective parallelism does not decay over a long campaign
/// of wedged runs.
pub(crate) fn note_abandoned(n: u64) {
    let pool = global();
    pool.abandoned.fetch_add(n, Ordering::Relaxed);
    for _ in 0..n {
        if !pool.spawn_parked_replacement() {
            break;
        }
    }
}

impl WorkerPool {
    /// Run `job` on a pooled worker: check out an idle worker if one is
    /// parked, otherwise spawn a new one. Never blocks on pool state.
    ///
    /// Checkout can fail — the OS refuses a thread, or the
    /// `pool_checkout` faultpoint fires — in which case the job is
    /// dropped (releasing whatever it captured) and the reason is
    /// returned for the caller to surface as an infra failure.
    pub(crate) fn execute(&'static self, job: Job) -> Result<(), String> {
        if let Some(reason) = crate::faultpoint::should_fail("pool_checkout") {
            return Err(reason);
        }
        // Checkout latency is only measured when telemetry is on; the
        // disabled cost is one relaxed atomic load.
        let t0 = goat_metrics::enabled().then(std::time::Instant::now);
        let mut job = job;
        loop {
            let worker = self.idle.lock().expect("pool lock").pop();
            match worker {
                Some(w) => match w.job_tx.send(job) {
                    Ok(()) => {
                        self.jobs_reused.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    // The worker died between parking and checkout
                    // (its channel is closed); take the job back and
                    // try the next one.
                    Err(mpsc::SendError(returned)) => job = returned,
                },
                None => {
                    self.spawn_worker(job)?;
                    break;
                }
            }
        }
        if let Some(t0) = t0 {
            checkout_histogram().record(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn spawn_worker(&'static self, first_job: Job) -> Result<(), String> {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        std::thread::Builder::new()
            .name("goat-worker".to_string())
            .spawn(move || self.worker_loop(first_job, job_tx, job_rx))
            .map(|_| {
                self.threads_spawned.fetch_add(1, Ordering::Relaxed);
            })
            .map_err(|e| format!("failed to spawn pool worker thread: {e}"))
    }

    /// Spawn a worker that goes straight to the idle stack, replacing
    /// one lost to abandonment. Returns false when the stack is already
    /// at capacity or the spawn failed (both mean: stop replacing).
    fn spawn_parked_replacement(&'static self) -> bool {
        if self.idle.lock().expect("pool lock").len() >= self.max_idle {
            return false;
        }
        let spawned = self.spawn_worker(Box::new(|| {})).is_ok();
        if spawned {
            self.workers_replaced.fetch_add(1, Ordering::Relaxed);
        }
        spawned
    }

    fn worker_loop(&'static self, first_job: Job, job_tx: Sender<Job>, job_rx: Receiver<Job>) {
        let mut job = first_job;
        loop {
            // `goroutine_main` handles all panics internally (including
            // shutdown unwinds); anything escaping here means the worker
            // is in an unknown state, so it must not be reused.
            if panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                return;
            }
            {
                let mut idle = self.idle.lock().expect("pool lock");
                if idle.len() >= self.max_idle {
                    self.workers_retired.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                idle.push(IdleWorker { job_tx: job_tx.clone() });
            }
            // Park until the next checkout; a closed channel would mean
            // the global pool was dropped, which cannot happen, but exit
            // cleanly regardless.
            match recv_job(&job_rx) {
                Some(next) => job = next,
                None => return,
            }
        }
    }
}

/// Spin-then-block receive of the next checkout, mirroring the token
/// parker's adaptive budget ([`crate::config::default_spin`], the
/// `GOAT_SPIN` knob; `0` blocks immediately). During a spawn burst the
/// next goroutine lands on a just-checked-in worker microseconds later,
/// and consuming it inside the spin window skips the futex wake on the
/// checkout path. `None` means the channel closed and the worker must
/// exit. Note the budget is the process-wide env default — per-runtime
/// `Config::spin` overrides apply only to the token parker, because the
/// pool outlives any single runtime.
fn recv_job(job_rx: &Receiver<Job>) -> Option<Job> {
    let mut pause = 1u32;
    for _ in 0..crate::config::default_spin() {
        match job_rx.try_recv() {
            Ok(job) => {
                if goat_metrics::enabled() {
                    checkout_spun_counter().add(1);
                }
                return Some(job);
            }
            Err(mpsc::TryRecvError::Empty) => {
                for _ in 0..pause {
                    std::hint::spin_loop();
                }
                pause = (pause * 2).min(64);
            }
            Err(mpsc::TryRecvError::Disconnected) => return None,
        }
    }
    job_rx.recv().ok()
}

/// Checkouts consumed during an idle worker's spin window (no futex
/// wait on either side), in the global metrics registry.
fn checkout_spun_counter() -> &'static goat_metrics::Counter {
    static C: OnceLock<std::sync::Arc<goat_metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| goat_metrics::counter("pool.checkout_spun"))
}

/// The pool-checkout latency histogram in the global metrics registry
/// (handle cached so the registry lock is taken once per process).
fn checkout_histogram() -> &'static goat_metrics::Histogram {
    static H: OnceLock<std::sync::Arc<goat_metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| goat_metrics::histogram("pool.checkout_ns"))
}

/// Point-in-time pool counters, for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// OS threads created by the pool since process start.
    pub threads_spawned: u64,
    /// Goroutine executions served by an already-running worker.
    pub jobs_reused: u64,
    /// Workers currently parked awaiting checkout.
    pub idle_now: usize,
    /// Workers that exited because the idle stack was full.
    pub workers_retired: u64,
    /// Goroutine jobs abandoned at a runtime teardown deadline (their
    /// worker threads were never returned to the pool).
    pub abandoned: u64,
    /// Replacement workers spawned to cover abandoned ones.
    pub workers_replaced: u64,
}

/// Pre-spawn parked workers until at least `target` (capped at the idle
/// limit) are waiting on the idle stack, so a cold process's first
/// burst of goroutine checkouts does not all pay thread-creation cost.
/// Best effort — a failed spawn stops early. Returns how many workers
/// were spawned. Used by the suite orchestrator's warm-resource path.
pub fn prewarm(target: usize) -> usize {
    let pool = global();
    let want = target.min(pool.max_idle);
    let mut spawned = 0usize;
    // Workers park themselves asynchronously after running the empty
    // first job, so spawn by deficit rather than polling the stack.
    let deficit = want.saturating_sub(pool.idle.lock().expect("pool lock").len());
    for _ in 0..deficit {
        if pool.spawn_worker(Box::new(|| {})).is_err() {
            break;
        }
        spawned += 1;
    }
    spawned
}

/// Snapshot the global pool's counters.
pub fn stats() -> PoolStats {
    let pool = global();
    PoolStats {
        threads_spawned: pool.threads_spawned.load(Ordering::Relaxed),
        jobs_reused: pool.jobs_reused.load(Ordering::Relaxed),
        idle_now: pool.idle.lock().expect("pool lock").len(),
        workers_retired: pool.workers_retired.load(Ordering::Relaxed),
        abandoned: pool.abandoned.load(Ordering::Relaxed),
        workers_replaced: pool.workers_replaced.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    fn drain_until(cond: impl Fn() -> bool) {
        for _ in 0..200 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("pool did not settle");
    }

    #[test]
    fn workers_are_reused_sequentially() {
        let before = stats();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let inner = Arc::clone(&ran);
            let target = ran.load(Ordering::SeqCst) + 1;
            global()
                .execute(Box::new(move || {
                    inner.fetch_add(1, Ordering::SeqCst);
                }))
                .expect("checkout");
            // Serialize jobs so each finds the previous worker idle.
            drain_until(|| ran.load(Ordering::SeqCst) >= target);
        }
        let after = stats();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        // Ten sequential jobs must not have cost ten threads.
        assert!(
            after.threads_spawned - before.threads_spawned <= 2,
            "expected reuse, spawned {} threads",
            after.threads_spawned - before.threads_spawned
        );
    }

    #[test]
    fn prewarm_parks_idle_workers() {
        assert_eq!(prewarm(0), 0);
        prewarm(2);
        // Pre-spawned workers run an empty job then park; other tests
        // may park workers too, so only assert the floor.
        drain_until(|| stats().idle_now >= 1);
        // A warm stack satisfies a repeat prewarm without spawning.
        drain_until(|| prewarm(1) == 0);
    }

    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let ran = Arc::new(AtomicUsize::new(0));
        global().execute(Box::new(|| panic!("deliberate test panic"))).expect("checkout");
        let ran2 = Arc::clone(&ran);
        global()
            .execute(Box::new(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("checkout");
        drain_until(|| ran.load(Ordering::SeqCst) == 1);
    }
}
