//! Deterministic fault injection for supervision testing.
//!
//! The campaign supervision layer (watchdog, retry, quarantine,
//! checkpoint) exists to survive faults that are rare in healthy runs:
//! a wedged OS thread, a failed worker checkout, a full disk under the
//! telemetry sink. This module makes every one of those paths
//! exercisable *on demand and deterministically*, so tests and CI can
//! prove the supervision machinery works without waiting for real
//! infrastructure to misbehave.
//!
//! A fault plan is a comma-separated list of `site:action[:param]`
//! specs, read from the `GOAT_FAULT` environment variable (or installed
//! programmatically by tests via [`scoped`]):
//!
//! ```text
//! GOAT_FAULT=pool_checkout:err:0.3,iter:wedge:seed=17
//! ```
//!
//! Sites and actions understood by the runtime:
//!
//! | site            | action  | param       | effect                                        |
//! |-----------------|---------|-------------|-----------------------------------------------|
//! | `pool_checkout` | `err`   | probability | worker checkout fails → `InfraFailure` outcome |
//! | `iter`          | `wedge` | `seed=N`    | run N's main stalls **outside** runtime primitives (hard watchdog path) |
//! | `iter`          | `spin`  | `seed=N`    | run N's main yields forever **inside** the scheduler (cooperative watchdog path) |
//! | `iter`          | `panic` | `seed=N`    | run N's main panics (kernel-crash path)       |
//! | `worker`        | `kill`  | `<sig>[@seed=N]` | isolated worker raises signal `<sig>` on run N (worker-death forensics path) |
//! | `worker`        | `wedge` | `seed=N`    | isolated worker stops heartbeating on run N (outside-SIGKILL path) |
//! | `worker`        | `garbage-frame` | `seed=N` | isolated worker answers run N with a corrupt frame (protocol-recovery path) |
//!
//! (`sink:err[:after=N]` is honoured by `goat-metrics`' JSONL sink,
//! which sits below this crate; the grammar is shared.)
//!
//! Probability draws come from a dedicated RNG seeded by
//! `GOAT_FAULT_SEED` (default 0), so a fault profile replays exactly.
//! When no plan is installed the per-call cost is one relaxed atomic
//! load, mirroring `goat_metrics::enabled`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Environment variable naming the fault plan.
pub const FAULT_ENV: &str = "GOAT_FAULT";

/// Environment variable seeding the probability-draw RNG.
pub const FAULT_SEED_ENV: &str = "GOAT_FAULT_SEED";

/// A seed-keyed fault fired at the start of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedFault {
    /// Stall the main goroutine outside all runtime primitives — the
    /// watchdog's hard-abandonment path.
    Wedge,
    /// Yield forever inside the scheduler — the watchdog's cooperative
    /// abort path.
    Spin,
    /// Panic — the kernel-crash path.
    Panic,
}

/// A fault fired inside an isolated worker process (`GOAT_ISOLATE=proc`)
/// when it receives the run whose seed matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Raise the given signal on the worker process (worker-death path).
    Kill(i32),
    /// Stop heartbeating without answering — the orchestrator's
    /// no-heartbeat deadline must SIGKILL the worker from outside.
    Wedge,
    /// Answer with a corrupt frame (protocol-recovery path).
    Garbage,
}

#[derive(Debug, Clone)]
enum Action {
    /// Fail with the given probability per draw.
    Err { prob: f64 },
    /// Fire a [`SeedFault`] on the run whose seed matches.
    OnSeed { fault: SeedFault, seed: Option<u64> },
    /// Isolated worker raises `sig` on itself for the matching run.
    WorkerKill { sig: i32, seed: Option<u64> },
    /// Isolated worker answers the matching run with a corrupt frame.
    GarbageFrame { seed: Option<u64> },
}

#[derive(Debug, Clone)]
struct Spec {
    site: String,
    action: Action,
}

struct Plan {
    specs: Vec<Spec>,
    /// The raw spec string the plan was parsed from, so an orchestrator
    /// can propagate the active plan into isolated worker subprocesses
    /// via their environment (see [`current_spec`]).
    raw: String,
    rng: Mutex<SmallRng>,
}

/// Tri-state mirror of the install state so the disabled fast path is
/// one relaxed load: 0 = unresolved, 1 = no plan, 2 = plan installed.
static STATE: AtomicU8 = AtomicU8::new(0);
static PLAN: Mutex<Option<&'static Plan>> = Mutex::new(None);
static INJECTED: AtomicU64 = AtomicU64::new(0);

fn parse_spec(one: &str) -> Option<Spec> {
    let mut parts = one.splitn(3, ':');
    let site = parts.next()?.trim();
    let action = parts.next()?.trim();
    let param = parts.next().map(str::trim);
    if site.is_empty() {
        return None;
    }
    let action = match action {
        "err" => {
            let prob = match param {
                None => 1.0,
                Some(p) => p.strip_prefix("after=").map_or_else(
                    // `after=N` is the sink's grammar; treat it as
                    // always-on here so shared profiles stay valid.
                    || p.parse::<f64>().ok().filter(|p| (0.0..=1.0).contains(p)).unwrap_or(-1.0),
                    |_| 1.0,
                ),
            };
            if prob < 0.0 {
                return None;
            }
            Action::Err { prob }
        }
        "wedge" | "spin" | "panic" => {
            let fault = match action {
                "wedge" => SeedFault::Wedge,
                "spin" => SeedFault::Spin,
                _ => SeedFault::Panic,
            };
            let seed = match param {
                None => None,
                Some(p) => Some(p.strip_prefix("seed=").unwrap_or(p).parse::<u64>().ok()?),
            };
            Action::OnSeed { fault, seed }
        }
        "kill" => {
            // `worker:kill:<sig>` or `worker:kill:<sig>@seed=N`.
            let p = param?;
            let (sig, seed) = match p.split_once("@seed=") {
                Some((sig, seed)) => (sig.trim(), Some(seed.parse::<u64>().ok()?)),
                None => (p, None),
            };
            let sig = sig.parse::<i32>().ok().filter(|&s| (1..=64).contains(&s))?;
            Action::WorkerKill { sig, seed }
        }
        "garbage-frame" => {
            let seed = match param {
                None => None,
                Some(p) => Some(p.strip_prefix("seed=").unwrap_or(p).parse::<u64>().ok()?),
            };
            Action::GarbageFrame { seed }
        }
        _ => return None,
    };
    Some(Spec { site: site.to_string(), action })
}

fn parse_plan(raw: &str) -> Plan {
    let mut specs = Vec::new();
    for one in raw.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match parse_spec(one) {
            Some(s) => specs.push(s),
            None => eprintln!("goat-runtime: ignoring malformed {FAULT_ENV} spec {one:?}"),
        }
    }
    let seed = std::env::var(FAULT_SEED_ENV).ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    Plan { specs, raw: raw.to_string(), rng: Mutex::new(SmallRng::seed_from_u64(seed)) }
}

fn install_locked(slot: &mut Option<&'static Plan>, plan: Option<Plan>) {
    let leaked = plan.filter(|p| !p.specs.is_empty()).map(|p| &*Box::leak(Box::new(p)));
    *slot = leaked;
    STATE.store(if leaked.is_some() { 2 } else { 1 }, Ordering::Relaxed);
}

fn install_plan(plan: Option<Plan>) {
    install_locked(&mut PLAN.lock().expect("fault plan"), plan);
}

#[cold]
fn resolve() -> bool {
    // Re-check the state under the plan lock: a scoped plan installed
    // concurrently with this first-ever active() call (STATE 0 → 2)
    // must not be overwritten by the lazy environment resolution, or
    // the injected faults would silently vanish while the FaultGuard
    // is still alive. Losing the race the other way is harmless: the
    // loser sees STATE != 0 and leaves the installed plan untouched.
    let mut slot = PLAN.lock().expect("fault plan");
    if STATE.load(Ordering::Relaxed) == 0 {
        let plan = std::env::var(FAULT_ENV).ok().filter(|v| !v.is_empty()).map(|v| parse_plan(&v));
        install_locked(&mut slot, plan);
    }
    STATE.load(Ordering::Relaxed) == 2
}

/// Is any fault plan installed for this process?
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => resolve(),
        1 => false,
        _ => true,
    }
}

fn with_plan<R>(f: impl FnOnce(&'static Plan) -> R) -> Option<R> {
    if !active() {
        return None;
    }
    let plan = (*PLAN.lock().expect("fault plan"))?;
    Some(f(plan))
}

/// Account one injected fault: bump the process counter and, when
/// telemetry is enabled, the `supervision.faults_injected` registry
/// counter plus a JSONL supervision event.
fn note_injected(site: &str, detail: &str) {
    INJECTED.fetch_add(1, Ordering::Relaxed);
    if goat_metrics::enabled() {
        goat_metrics::counter("supervision.faults_injected").inc();
        goat_metrics::emit(&FaultEvent {
            kind: "supervision",
            op: "fault_injected",
            site: site.to_string(),
            detail: detail.to_string(),
        });
    }
}

/// JSONL record of one injected fault (kind `supervision`).
#[derive(serde::Serialize)]
struct FaultEvent {
    kind: &'static str,
    op: &'static str,
    site: String,
    detail: String,
}

/// Total faults injected by this process since start (all sites).
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Probability-keyed fault draw for `site`; `Some(reason)` when the
/// fault fires this time.
pub fn should_fail(site: &str) -> Option<String> {
    with_plan(|plan| {
        for spec in &plan.specs {
            if spec.site != site {
                continue;
            }
            if let Action::Err { prob } = spec.action {
                let hit = prob >= 1.0
                    || (prob > 0.0 && plan.rng.lock().expect("fault rng").gen_bool(prob));
                if hit {
                    let reason = format!("injected fault: {site}:err");
                    note_injected(site, &reason);
                    return Some(reason);
                }
            }
        }
        None
    })
    .flatten()
}

/// Seed-keyed fault for `site` (a spec without `seed=` fires on every
/// run); `Some` when the run with this seed must misbehave.
pub fn seed_fault(site: &str, seed: u64) -> Option<SeedFault> {
    with_plan(|plan| {
        for spec in &plan.specs {
            if spec.site != site {
                continue;
            }
            if let Action::OnSeed { fault, seed: want } = spec.action {
                if want.is_none_or(|w| w == seed) {
                    note_injected(site, &format!("injected fault: {site}:{fault:?} seed={seed}"));
                    return Some(fault);
                }
            }
        }
        None
    })
    .flatten()
}

/// Seed-keyed worker fault for isolated runs (a spec without a seed
/// fires on every run); `Some` when the worker hosting this seed must
/// die, wedge, or corrupt its answer. Consulted by the worker itself on
/// receipt of a run request, so the fault fires deterministically inside
/// the sandbox regardless of which pool slot picked the run up.
pub fn worker_fault(seed: u64) -> Option<WorkerFault> {
    with_plan(|plan| {
        for spec in &plan.specs {
            if spec.site != "worker" {
                continue;
            }
            let (fault, want) = match spec.action {
                Action::WorkerKill { sig, seed: want } => (WorkerFault::Kill(sig), want),
                Action::OnSeed { fault: SeedFault::Wedge, seed: want } => {
                    (WorkerFault::Wedge, want)
                }
                Action::GarbageFrame { seed: want } => (WorkerFault::Garbage, want),
                _ => continue,
            };
            if want.is_none_or(|w| w == seed) {
                note_injected("worker", &format!("injected fault: worker:{fault:?} seed={seed}"));
                return Some(fault);
            }
        }
        None
    })
    .flatten()
}

/// The raw spec string of the active fault plan, whether it came from
/// `GOAT_FAULT` or a [`scoped`] installation. Orchestrators use this to
/// re-inject the plan into isolated worker subprocesses (which otherwise
/// would not see a test's in-process scoped plan).
pub fn current_spec() -> Option<String> {
    with_plan(|plan| plan.raw.clone())
}

/// Serializes scoped fault installations so concurrently running tests
/// cannot see each other's plans.
static SCOPE: Mutex<()> = Mutex::new(());

/// Clears the scoped fault plan on drop.
pub struct FaultGuard {
    _scope: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        install_plan(None);
    }
}

/// Install a fault plan for the lifetime of the returned guard (test
/// hook). Guards serialize on a process-wide lock, so parallel tests
/// using faults do not interleave; code that never calls [`scoped`] is
/// unaffected.
pub fn scoped(spec: &str) -> FaultGuard {
    let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    install_plan(Some(parse_plan(spec)));
    FaultGuard { _scope: scope }
}

/// One-time leak sink for scoped plans: `install_plan` leaks each plan
/// (they are tiny and tests install a handful); keep clippy honest.
static _LEAK_NOTE: OnceLock<()> = OnceLock::new();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let plan = parse_plan("pool_checkout:err:0.3,iter:wedge:seed=17");
        assert_eq!(plan.specs.len(), 2);
        assert!(matches!(plan.specs[0].action, Action::Err { prob } if (prob - 0.3).abs() < 1e-9));
        assert!(matches!(
            plan.specs[1].action,
            Action::OnSeed { fault: SeedFault::Wedge, seed: Some(17) }
        ));
    }

    #[test]
    fn malformed_specs_are_dropped() {
        let plan = parse_plan("nonsense,iter:frobnicate:9,:err,iter:panic:seed=3");
        assert_eq!(plan.specs.len(), 1);
        assert!(matches!(
            plan.specs[0].action,
            Action::OnSeed { fault: SeedFault::Panic, seed: Some(3) }
        ));
    }

    #[test]
    fn scoped_plan_fires_and_clears() {
        {
            let _g = scoped("pool_checkout:err:1.0,iter:spin:seed=5");
            assert!(active());
            assert!(should_fail("pool_checkout").is_some());
            assert!(should_fail("other_site").is_none());
            assert_eq!(seed_fault("iter", 5), Some(SeedFault::Spin));
            assert_eq!(seed_fault("iter", 6), None);
        }
        assert!(should_fail("pool_checkout").is_none());
        assert_eq!(seed_fault("iter", 5), None);
    }

    #[test]
    fn parses_worker_profiles() {
        let plan = parse_plan("worker:kill:6@seed=11,worker:wedge:seed=3,worker:garbage-frame");
        assert_eq!(plan.specs.len(), 3);
        assert!(matches!(plan.specs[0].action, Action::WorkerKill { sig: 6, seed: Some(11) }));
        assert!(matches!(
            plan.specs[1].action,
            Action::OnSeed { fault: SeedFault::Wedge, seed: Some(3) }
        ));
        assert!(matches!(plan.specs[2].action, Action::GarbageFrame { seed: None }));
        // Malformed worker specs are dropped, not misparsed.
        assert!(parse_spec("worker:kill").is_none());
        assert!(parse_spec("worker:kill:notasig").is_none());
        assert!(parse_spec("worker:kill:99").is_none());
        assert!(parse_spec("worker:garbage-frame:seed=x").is_none());
    }

    #[test]
    fn worker_faults_fire_by_seed() {
        {
            let _g = scoped("worker:kill:9@seed=4,worker:garbage-frame:seed=7");
            assert_eq!(worker_fault(4), Some(WorkerFault::Kill(9)));
            assert_eq!(worker_fault(7), Some(WorkerFault::Garbage));
            assert_eq!(worker_fault(5), None);
            // `iter` faults never leak into the worker site.
            assert_eq!(seed_fault("iter", 4), None);
        }
        assert_eq!(worker_fault(4), None);
    }

    #[test]
    fn worker_wedge_maps_onto_worker_fault() {
        let _g = scoped("worker:wedge:seed=2");
        assert_eq!(worker_fault(2), Some(WorkerFault::Wedge));
        assert_eq!(worker_fault(3), None);
    }

    #[test]
    fn current_spec_reflects_scoped_plan() {
        {
            let _g = scoped("worker:kill:6@seed=1");
            assert_eq!(current_spec().as_deref(), Some("worker:kill:6@seed=1"));
        }
        assert_eq!(current_spec(), None);
    }

    #[test]
    fn probability_draws_are_deterministic() {
        let hits = |spec: &str| {
            let _g = scoped(spec);
            (0..64).filter(|_| should_fail("pool_checkout").is_some()).count()
        };
        let a = hits("pool_checkout:err:0.5");
        let b = hits("pool_checkout:err:0.5");
        assert_eq!(a, b, "same plan + same seed must draw identically");
        assert!(a > 0 && a < 64);
    }
}
