//! Edge-case integration tests for the runtime: semantics corners that
//! the unit tests don't reach — many-way contention, non-`Copy` values,
//! wide selects, nested selects in case closures, timer/select races,
//! stress-scale goroutine counts, and drop correctness of leaked values.

use goat_runtime::context::Context;
use goat_runtime::{
    go, go_named, gosched, time, Chan, Config, Once, Runtime, RwLock, Select, WaitGroup,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn cfg(seed: u64) -> Config {
    Config::new(seed)
}

#[test]
fn hundred_goroutines_fan_in() {
    let r = Runtime::run(cfg(1), || {
        let results: Chan<u64> = Chan::new(16);
        let wg = WaitGroup::new();
        for i in 0..100u64 {
            wg.add(1);
            let (results, wg) = (results.clone(), wg.clone());
            go(move || {
                results.send(i);
                wg.done();
            });
        }
        let mut sum = 0;
        for _ in 0..100 {
            sum += results.recv().unwrap();
        }
        assert_eq!(sum, 4950);
        wg.wait();
    });
    assert!(r.clean(), "{:?}", r.outcome);
    assert_eq!(r.goroutines, 101);
}

#[test]
fn non_copy_values_move_through_channels() {
    let r = Runtime::run(cfg(2), || {
        let ch: Chan<Vec<String>> = Chan::new(0);
        let tx = ch.clone();
        go(move || {
            tx.send(vec!["hello".to_string(), "world".to_string()]);
        });
        let got = ch.recv().unwrap();
        assert_eq!(got.join(" "), "hello world");
    });
    assert!(r.clean());
}

#[test]
fn leaked_blocked_senders_drop_their_values() {
    // A value stuck in a blocked sender must still be dropped at
    // teardown — no leak of the payload itself.
    struct DropProbe(Arc<AtomicUsize>);
    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    let drops = Arc::new(AtomicUsize::new(0));
    let probe_drops = Arc::clone(&drops);
    let r = Runtime::run(cfg(3), move || {
        let ch: Chan<DropProbe> = Chan::new(0);
        let probe = DropProbe(Arc::clone(&probe_drops));
        go_named("stuck-sender", move || {
            ch.send(probe); // blocks forever; the value sits in the queue
        });
        gosched();
    });
    assert_eq!(r.alive_at_end.len(), 1);
    assert_eq!(drops.load(Ordering::SeqCst), 1, "stuck payload must be dropped");
}

#[test]
fn five_way_select_takes_only_ready_cases() {
    let r = Runtime::run(cfg(4), || {
        let chans: Vec<Chan<u32>> = (0..5).map(|_| Chan::new(1)).collect();
        chans[2].send(42); // only case 2 is ready
        let (c0, c1, c2, c3, c4) = (&chans[0], &chans[1], &chans[2], &chans[3], &chans[4]);
        for _ in 0..3 {
            let got = Select::new()
                .recv(c0, |_| 0u32)
                .recv(c1, |_| 1)
                .recv(c2, |v| v.unwrap())
                .recv(c3, |_| 3)
                .recv(c4, |_| 4)
                .default(|| 99)
                .run();
            // first pass takes 42 from case 2; later passes hit default
            assert!(got == 42 || got == 99);
        }
    });
    assert!(r.clean());
}

#[test]
fn nested_select_inside_case_closure() {
    let r = Runtime::run(cfg(5), || {
        let outer: Chan<u32> = Chan::new(1);
        let inner: Chan<u32> = Chan::new(1);
        outer.send(1);
        inner.send(2);
        let got = Select::new()
            .recv(&outer, |v| {
                let o = v.unwrap();
                // a select nested within the winning case's closure
                let i = Select::new().recv(&inner, |v| v.unwrap()).run();
                o + i
            })
            .run();
        assert_eq!(got, 3);
    });
    assert!(r.clean(), "{:?}", r.outcome);
}

#[test]
fn select_send_and_recv_cases_on_same_channel() {
    let r = Runtime::run(cfg(6), || {
        let ch: Chan<u32> = Chan::new(1);
        // empty buffered channel: send ready, recv not → send must win
        let which = Select::new().recv(&ch, |_| "recv").send(&ch, 7, || "send").run();
        assert_eq!(which, "send");
        // now full: recv ready, send not → recv must win
        let which = Select::new().recv(&ch, |_| "recv").send(&ch, 8, || "send").run();
        assert_eq!(which, "recv");
    });
    assert!(r.clean());
}

#[test]
fn timer_vs_data_race_is_deterministic_per_seed() {
    let outcome = |seed| {
        let hit_timeout = Arc::new(AtomicUsize::new(0));
        let probe = Arc::clone(&hit_timeout);
        let r = Runtime::run(cfg(seed), move || {
            let data: Chan<u32> = Chan::new(0);
            let tx = data.clone();
            go(move || {
                time::sleep(Duration::from_micros(50));
                let _ = tx.try_send(1);
            });
            let timeout = time::after(Duration::from_micros(60));
            let timed_out = Select::new().recv(&data, |_| false).recv(&timeout, |_| true).run();
            if timed_out {
                probe.store(1, Ordering::SeqCst);
            }
        });
        assert!(r.outcome.is_completed());
        hit_timeout.load(Ordering::SeqCst)
    };
    for seed in 0..6 {
        assert_eq!(outcome(seed), outcome(seed), "seed {seed} not reproducible");
    }
}

#[test]
fn rwlock_many_readers_one_writer_stress() {
    let r = Runtime::run(cfg(7), || {
        let rw = RwLock::new();
        let wg = WaitGroup::new();
        for _ in 0..8 {
            wg.add(1);
            let (rw, wg) = (rw.clone(), wg.clone());
            go(move || {
                for _ in 0..10 {
                    rw.rlock();
                    rw.runlock();
                }
                wg.done();
            });
        }
        for _ in 0..4 {
            wg.add(1);
            let (rw, wg) = (rw.clone(), wg.clone());
            go(move || {
                for _ in 0..5 {
                    rw.lock();
                    rw.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    });
    assert!(r.clean(), "{:?}", r.outcome);
}

#[test]
fn context_timeout_and_manual_cancel_compose() {
    let r = Runtime::run(cfg(8), || {
        // Manual cancel before the deadline: done closes once, timer
        // firing later is a no-op (no double close panic).
        let (ctx, cancel) = Context::with_timeout(Duration::from_millis(5));
        cancel.cancel();
        assert_eq!(ctx.done().recv(), None);
        time::sleep(Duration::from_millis(10)); // deadline passes silently
        assert!(ctx.is_cancelled());
    });
    assert!(r.clean(), "{:?}", r.outcome);
}

#[test]
fn once_under_contention_with_yields() {
    for d in [0u32, 3] {
        let calls = Arc::new(AtomicUsize::new(0));
        let probe = Arc::clone(&calls);
        let r = Runtime::run(Config::new(9).with_delay_bound(d), move || {
            let once = Once::new();
            let wg = WaitGroup::new();
            for _ in 0..6 {
                wg.add(1);
                let (once, wg, calls) = (once.clone(), wg.clone(), Arc::clone(&probe));
                go(move || {
                    once.do_once(|| {
                        calls.fetch_add(1, Ordering::SeqCst);
                    });
                    wg.done();
                });
            }
            wg.wait();
        });
        assert!(r.clean(), "D{d}: {:?}", r.outcome);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "D{d}");
    }
}

#[test]
fn deep_goroutine_nesting() {
    // Each goroutine spawns the next; depth 30.
    let r = Runtime::run(cfg(10), || {
        fn nest(depth: u32, done: Chan<u32>) {
            if depth == 0 {
                done.send(0);
                return;
            }
            let d2 = done.clone();
            go(move || nest(depth - 1, d2));
        }
        let done: Chan<u32> = Chan::new(0);
        let d = done.clone();
        go(move || nest(30, d));
        assert_eq!(done.recv(), Some(0));
    });
    assert!(r.clean(), "{:?}", r.outcome);
    assert!(r.goroutines >= 32);
}

#[test]
fn range_over_channel_closed_mid_iteration() {
    let r = Runtime::run(cfg(11), || {
        let ch: Chan<u32> = Chan::new(4);
        let closer = ch.clone();
        go(move || {
            closer.send(1);
            closer.send(2);
            closer.close();
        });
        let got: Vec<u32> = ch.range().collect();
        assert_eq!(got, vec![1, 2]);
    });
    assert!(r.clean());
}

#[test]
fn trace_cap_degrades_gracefully() {
    let mut config = cfg(12);
    config.max_trace_events = 50;
    let r = Runtime::run(config, || {
        for _ in 0..100 {
            gosched();
        }
    });
    assert!(r.outcome.is_completed());
    let ect = r.ect.unwrap();
    assert!(ect.len() <= 50, "cap respected: {}", ect.len());
    assert!(ect.well_formed().is_ok(), "truncated trace still well-formed");
}
