//! Scheduler edge-case sweep: corners where the run queue, timer wheel
//! and channel close semantics interact. Every scenario runs under both
//! the native scheduler (D = 0) and the yield-injection scheduler
//! (D > 0) — perturbation must never change *what* the runtime allows,
//! only *which* legal interleaving it picks.

use goat_runtime::{go, gosched, time, Chan, Config, RunOutcome, Runtime, Select};
use std::time::Duration;

/// The two scheduler modes each scenario must survive.
fn modes(seed: u64) -> [(Config, &'static str); 2] {
    [(Config::new(seed), "native"), (Config::new(seed).with_delay_bound(3), "yield-injection")]
}

// ---------------------------------------------------------------------
// 1. select over one ready channel + one closed channel
// ---------------------------------------------------------------------
// A closed channel's recv case counts as ready (it yields `None`
// immediately), so the select sees TWO ready cases and must choose
// pseudo-randomly — it must never block and never panic.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Value(u32),
    Closed,
}

fn select_ready_vs_closed(cfg: Config) -> Arm {
    let picked = std::sync::Arc::new(std::sync::Mutex::new(None));
    let probe = std::sync::Arc::clone(&picked);
    let r = Runtime::run(cfg, move || {
        let ready: Chan<u32> = Chan::new(1);
        ready.send(7);
        let closed: Chan<u32> = Chan::new(0);
        closed.close();
        let got = Select::new()
            .recv(&ready, |v| Arm::Value(v.expect("buffered value")))
            .recv(&closed, |v| {
                assert_eq!(v, None, "recv on closed yields None");
                Arm::Closed
            })
            .run();
        *probe.lock().unwrap() = Some(got);
    });
    assert!(r.clean(), "{:?}", r.outcome);
    let arm = picked.lock().unwrap().expect("select must have run");
    arm
}

#[test]
fn select_one_ready_one_closed_never_blocks() {
    for (cfg, mode) in modes(1) {
        let arm = select_ready_vs_closed(cfg);
        assert!(matches!(arm, Arm::Value(7) | Arm::Closed), "{mode}: {arm:?}");
    }
}

#[test]
fn select_one_ready_one_closed_choice_is_seeded() {
    // Per-seed determinism, and across a seed sweep both arms must be
    // reachable — a closed case that can never win would hide bugs that
    // only fire on the closed path.
    for d in [0u32, 3] {
        let mut saw_value = false;
        let mut saw_closed = false;
        for seed in 0..16u64 {
            let cfg = Config::new(seed).with_delay_bound(d);
            let a = select_ready_vs_closed(cfg.clone());
            let b = select_ready_vs_closed(cfg);
            assert_eq!(a, b, "D{d} seed {seed} not reproducible");
            match a {
                Arm::Value(_) => saw_value = true,
                Arm::Closed => saw_closed = true,
            }
        }
        assert!(saw_value, "D{d}: ready-value arm never chosen in 16 seeds");
        assert!(saw_closed, "D{d}: closed arm never chosen in 16 seeds");
    }
}

// ---------------------------------------------------------------------
// 2. send on a full buffered channel racing a close
// ---------------------------------------------------------------------
// The sender blocks on a full buffer while one goroutine drains and
// another closes. Depending on the interleaving the send either lands
// (receiver freed a slot first) or panics with Go's "send on closed
// channel" — both are legal; anything else (deadlock, silent loss,
// wrong panic) is a scheduler bug.

fn full_send_vs_close(cfg: Config) -> RunOutcome {
    let r = Runtime::run(cfg, || {
        let ch: Chan<u32> = Chan::new(1);
        ch.send(0); // fill the buffer: the next send must block
        let tx = ch.clone();
        go(move || {
            tx.send(1); // blocked: buffer full
        });
        let closer = ch.clone();
        go(move || {
            closer.close(); // may hit the sender while still blocked
        });
        let rx = ch.clone();
        go(move || {
            let _ = rx.recv(); // frees the slot — may unblock the sender
        });
        // let the race play out
        for _ in 0..8 {
            gosched();
        }
    });
    r.outcome
}

#[test]
fn full_buffer_send_racing_close_panics_or_completes() {
    for d in [0u32, 3] {
        let mut saw_panic = false;
        for seed in 0..24u64 {
            let cfg = Config::new(seed).with_delay_bound(d);
            let outcome = full_send_vs_close(cfg.clone());
            match &outcome {
                RunOutcome::Completed => {}
                RunOutcome::Panicked { msg, .. } => {
                    assert_eq!(msg, "send on closed channel", "D{d} seed {seed}");
                    saw_panic = true;
                }
                other => panic!("D{d} seed {seed}: unexpected outcome {other:?}"),
            }
            // same seed, same verdict
            let replay = full_send_vs_close(cfg);
            assert_eq!(
                std::mem::discriminant(&outcome),
                std::mem::discriminant(&replay),
                "D{d} seed {seed} not reproducible"
            );
        }
        assert!(saw_panic, "D{d}: close never caught the blocked sender in 24 seeds");
    }
}

// ---------------------------------------------------------------------
// 3. Gosched from the only runnable goroutine
// ---------------------------------------------------------------------
// Yielding with an empty run queue must hand the token straight back —
// not deadlock, not spin the watchdog out.

#[test]
fn gosched_with_empty_runq_returns_immediately() {
    for (cfg, mode) in modes(3) {
        let r = Runtime::run(cfg, || {
            for _ in 0..10 {
                gosched();
            }
        });
        assert!(r.clean(), "{mode}: {:?}", r.outcome);
        assert_eq!(r.goroutines, 1, "{mode}");
        assert!(r.sched.yields_gosched >= 10, "{mode}: {:?}", r.sched);
    }
}

#[test]
fn gosched_sole_runnable_child_still_progresses() {
    // Main blocks receiving; the child is then the only runnable
    // goroutine and yields repeatedly before finally sending.
    for (cfg, mode) in modes(4) {
        let r = Runtime::run(cfg, || {
            let ch: Chan<u32> = Chan::new(0);
            let tx = ch.clone();
            go(move || {
                for _ in 0..5 {
                    gosched(); // nobody else to run
                }
                tx.send(9);
            });
            assert_eq!(ch.recv(), Some(9));
        });
        assert!(r.clean(), "{mode}: {:?}", r.outcome);
    }
}

// ---------------------------------------------------------------------
// 4. timer firing while the run queue is empty
// ---------------------------------------------------------------------
// Every goroutine is asleep on the timer wheel; the scheduler must
// advance the virtual clock to the next deadline instead of declaring
// a global deadlock.

#[test]
fn timer_fires_with_empty_runq() {
    for (cfg, mode) in modes(5) {
        let r = Runtime::run(cfg, || {
            time::sleep(Duration::from_millis(3)); // sole goroutine parks
        });
        assert!(r.clean(), "{mode}: {:?}", r.outcome);
        assert!(r.vclock.0 >= 3_000_000, "{mode}: vclock {:?}", r.vclock);
        assert!(r.sched.timer_fires >= 1, "{mode}: {:?}", r.sched);
    }
}

#[test]
fn timer_chain_with_empty_runq_fires_in_deadline_order() {
    // Two sleepers with different deadlines and nothing runnable in
    // between: the clock must jump deadline-to-deadline, shorter first.
    for (cfg, mode) in modes(6) {
        let r = Runtime::run(cfg, || {
            let order: Chan<u32> = Chan::new(2);
            let a = order.clone();
            go(move || {
                time::sleep(Duration::from_millis(5));
                a.send(5);
            });
            let b = order.clone();
            go(move || {
                time::sleep(Duration::from_millis(2));
                b.send(2);
            });
            time::sleep(Duration::from_millis(8)); // main parks too
            assert_eq!(order.recv(), Some(2), "shorter deadline first");
            assert_eq!(order.recv(), Some(5));
        });
        assert!(r.clean(), "{mode}: {:?}", r.outcome);
        assert!(r.sched.timer_fires >= 3, "{mode}: {:?}", r.sched);
    }
}
