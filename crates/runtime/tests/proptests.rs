//! Property-based tests: randomly generated concurrent programs, run
//! under random seeds, delay bounds and scheduling policies, must uphold
//! the runtime's core guarantees:
//!
//! 1. programs that are deadlock-free **by construction** always
//!    complete cleanly (no false deadlocks, no lost wakeups);
//! 2. traces are always well-formed;
//! 3. equal seeds replay identical traces; recorded schedules replay
//!    identical traces under different seeds;
//! 4. injected yields never exceed the delay bound.
//!
//! The generated programs use the whole primitive surface: buffered
//! channels with close/range, ascending-order mutexes, wait groups,
//! non-blocking selects, sleeps and yields.

use goat_runtime::{
    go_named, gosched, time, Chan, Config, Mutex, Runtime, SchedPolicy, Select, WaitGroup,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// One step of a worker's script. Designed so that any script is
/// deadlock-free: sends go to per-worker-assigned buffered channels that
/// a dedicated consumer drains until close; locks are taken in ascending
/// index order and released immediately; selects carry a default.
#[derive(Debug, Clone)]
enum Op {
    Send { ch: usize, n: u8 },
    LockCycle { first: usize, second: usize },
    Yield,
    Sleep { ms: u8 },
    PollSelect { ch: usize },
}

#[derive(Debug, Clone)]
struct Script {
    channels: usize,
    mutexes: usize,
    workers: Vec<Vec<Op>>,
}

fn op_strategy(channels: usize, mutexes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..channels, 1..4u8).prop_map(|(ch, n)| Op::Send { ch, n }),
        (0..mutexes, 0..mutexes)
            .prop_map(move |(a, b)| Op::LockCycle { first: a.min(b), second: a.max(b) }),
        Just(Op::Yield),
        (1..3u8).prop_map(|ms| Op::Sleep { ms }),
        (0..channels).prop_map(|ch| Op::PollSelect { ch }),
    ]
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (1..4usize, 1..4usize)
        .prop_flat_map(|(channels, mutexes)| {
            let ops = prop::collection::vec(op_strategy(channels, mutexes), 1..8);
            let workers = prop::collection::vec(ops, 1..5);
            (Just(channels), Just(mutexes), workers)
        })
        .prop_map(|(channels, mutexes, workers)| Script { channels, mutexes, workers })
}

/// Interpret a script as a Go-style program. Total sends per channel are
/// precomputed so consumers know when producers are done; the channel is
/// then closed by the coordinator and consumers drain via `range`.
fn run_script(script: &Script, cfg: Config) -> goat_runtime::RunResult {
    let script = Arc::new(script.clone());
    Runtime::run(cfg, move || {
        let channels: Vec<Chan<u64>> = (0..script.channels).map(|_| Chan::new(64)).collect();
        let mutexes: Vec<Mutex> = (0..script.mutexes).map(|_| Mutex::new()).collect();
        let wg = WaitGroup::new();
        let consumer_done: Chan<u64> = Chan::new(script.channels);

        for (w, ops) in script.workers.iter().enumerate() {
            wg.add(1);
            let ops = ops.clone();
            let channels = channels.clone();
            let mutexes = mutexes.clone();
            let wg = wg.clone();
            go_named(&format!("worker{w}"), move || {
                for op in &ops {
                    match op {
                        Op::Send { ch, n } => {
                            for i in 0..*n {
                                channels[*ch].send(u64::from(i));
                            }
                        }
                        Op::LockCycle { first, second } => {
                            mutexes[*first].lock();
                            if second != first {
                                mutexes[*second].lock();
                                mutexes[*second].unlock();
                            }
                            mutexes[*first].unlock();
                        }
                        Op::Yield => gosched(),
                        Op::Sleep { ms } => time::sleep(Duration::from_millis(u64::from(*ms))),
                        Op::PollSelect { ch } => {
                            let _ =
                                Select::new().recv(&channels[*ch], |v| v).default(|| None).run();
                        }
                    }
                }
                wg.done();
            });
        }
        for (c, ch) in channels.iter().enumerate() {
            let ch = ch.clone();
            let done = consumer_done.clone();
            go_named(&format!("consumer{c}"), move || {
                let mut sum = 0u64;
                for v in ch.range() {
                    sum += v;
                }
                done.send(sum);
            });
        }
        wg.wait(); // all producers finished
        for ch in &channels {
            ch.close();
        }
        for _ in 0..script.channels {
            consumer_done.recv();
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn generated_programs_always_complete_cleanly(
        script in script_strategy(),
        seed in 0u64..1000,
        d in 0u32..4,
    ) {
        let cfg = Config::new(seed).with_delay_bound(d);
        let r = run_script(&script, cfg);
        prop_assert!(
            r.outcome.is_completed(),
            "outcome {:?} for {script:?}",
            r.outcome
        );
        prop_assert!(r.alive_at_end.is_empty(), "leak in a deadlock-free program");
        prop_assert!(r.yields_injected <= d);
        let ect = r.ect.expect("traced");
        prop_assert!(ect.well_formed().is_ok(), "{:?}", ect.well_formed());
    }

    #[test]
    fn generated_programs_complete_under_uniform_random_policy(
        script in script_strategy(),
        seed in 0u64..1000,
    ) {
        let cfg = Config::new(seed).with_policy(SchedPolicy::UniformRandom);
        let r = run_script(&script, cfg);
        prop_assert!(r.outcome.is_completed(), "outcome {:?}", r.outcome);
        prop_assert!(r.alive_at_end.is_empty());
    }

    #[test]
    fn same_seed_same_trace(script in script_strategy(), seed in 0u64..500) {
        let a = run_script(&script, Config::new(seed).with_delay_bound(2));
        let b = run_script(&script, Config::new(seed).with_delay_bound(2));
        prop_assert_eq!(a.ect.unwrap().render(), b.ect.unwrap().render());
        prop_assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn recorded_schedule_replays_under_any_seed(
        script in script_strategy(),
        seed in 0u64..200,
        replay_seed in 0u64..200,
    ) {
        let original = run_script(&script, Config::new(seed).with_delay_bound(1));
        let log = original.schedule.clone();
        let replayed =
            run_script(&script, Config::new(replay_seed).with_replay(log));
        prop_assert!(!replayed.replay_diverged, "replay diverged");
        prop_assert_eq!(
            original.ect.unwrap().render(),
            replayed.ect.unwrap().render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Injecting a guaranteed-stuck goroutine must always be reported:
    /// no schedule may hide a structurally leaked goroutine.
    #[test]
    fn injected_leak_is_always_reported(
        script in script_strategy(),
        seed in 0u64..500,
    ) {
        let script = Arc::new(script);
        let r = Runtime::run(Config::new(seed), move || {
            let stuck: Chan<u8> = Chan::new(0);
            go_named("injected-leaker", move || {
                stuck.recv(); // no sender will ever come
            });
            // run the innocent script around the leak
            let _ = &script;
            gosched();
        });
        prop_assert!(r.outcome.is_completed());
        prop_assert_eq!(r.alive_at_end.len(), 1);
        prop_assert_eq!(r.alive_at_end[0].name.as_str(), "injected-leaker");
    }
}
