//! Stress and equivalence tests for the spin-then-park token handoff.
//!
//! The parker's contract: exactly one consumer parks per cycle, exactly
//! one producer grants (or shuts down), and the grant must never be
//! lost regardless of where in the consumer's spin→park transition it
//! lands. These tests hammer exactly that window, then assert at the
//! runtime level that the spin budget is invisible to execution traces
//! — handoff order is a scheduler decision, never a spin race.

use goat_runtime::park::Parker;
use goat_runtime::{go, go_named, time, Chan, Config, Mutex, Runtime, Select, WaitGroup};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Two threads ping-pong the token through a pair of parkers. Every
/// handoff lands in a different phase of the consumer's spin window
/// (the counter-driven busy loop varies timing), exercising the
/// grant-while-spinning, grant-at-transition and grant-while-parked
/// paths many thousands of times.
#[test]
fn token_ping_pong_never_loses_a_grant() {
    const ROUNDS: u64 = 20_000;
    for spin in [0u32, 1, 4, 100] {
        let a = Parker::new(spin);
        let b = Parker::new(spin);
        let count = Arc::new(AtomicU64::new(0));

        let (a2, b2, count2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&count));
        let peer = std::thread::spawn(move || {
            for i in 0..ROUNDS {
                a2.park().expect("no shutdown in this test");
                count2.fetch_add(1, Ordering::Relaxed);
                // Vary the producer-side delay so grants land in every
                // phase of the consumer's spin window.
                for _ in 0..(i % 7) * 3 {
                    std::hint::spin_loop();
                }
                b2.grant();
            }
        });

        for i in 0..ROUNDS {
            for _ in 0..(i % 5) * 5 {
                std::hint::spin_loop();
            }
            a.grant();
            b.park().expect("no shutdown in this test");
        }
        peer.join().expect("peer thread");
        assert_eq!(count.load(Ordering::Relaxed), ROUNDS, "spin={spin}: every grant consumed");
    }
}

/// Shutdown must interrupt a consumer anywhere in its spin window, and
/// must win over a grant that lands in the same cycle.
#[test]
fn shutdown_interrupts_spinning_and_parked_consumers() {
    for (spin, delay_us) in [(u32::MAX, 0u64), (u32::MAX, 200), (0, 200), (16, 50)] {
        let p = Parker::new(spin);
        let q = Arc::clone(&p);
        let h = std::thread::spawn(move || q.park());
        std::thread::sleep(Duration::from_micros(delay_us));
        p.shutdown();
        assert_eq!(h.join().expect("join"), Err(()), "spin={spin} delay={delay_us}us");
    }
}

/// A grant that precedes the park entirely (the scheduler often grants
/// while the successor is still unwinding from its previous step) must
/// be consumed without blocking, cycle after cycle on the same parker.
#[test]
fn grant_before_park_is_never_lost_across_cycles() {
    for spin in [0u32, 100] {
        let p = Parker::new(spin);
        for _ in 0..10_000 {
            p.grant();
            assert_eq!(p.park(), Ok(()));
        }
    }
}

/// A workload touching every gate kind: channels (blocking send/recv),
/// mutexes, waitgroups, select (ready + blocked + default) and virtual
/// time, so the handoff path is exercised from all call sites.
fn gate_mix_kernel() {
    let results: Chan<u64> = Chan::new(8);
    let mu = Mutex::new();
    let wg = WaitGroup::new();
    for worker in 0..4u64 {
        wg.add(1);
        let (results, mu, wg) = (results.clone(), mu.clone(), wg.clone());
        go_named("worker", move || {
            let inner: Chan<u64> = Chan::new(0);
            let tx = inner.clone();
            go(move || tx.send(worker));
            let got = Select::new()
                .recv(&inner, |v| v.unwrap_or(99))
                .recv(&time::after(Duration::from_millis(50)), |_| 77)
                .run();
            mu.lock();
            results.send(got);
            mu.unlock();
            wg.done();
        });
    }
    wg.wait();
    let mut sum = 0;
    for _ in 0..4 {
        sum += results.recv().expect("worker result");
    }
    assert!(sum <= 4 * 99);
}

/// The tentpole's soundness claim, asserted end to end: the spin budget
/// changes only how threads wait for the token, never who gets it —
/// the full event trace, its fingerprint and the decision schedule are
/// byte-identical between park-only (`GOAT_SPIN=0`), the default spin
/// window and an extreme one.
#[test]
fn traces_are_byte_identical_across_spin_budgets() {
    for seed in [1u64, 7, 1234] {
        let runs: Vec<_> = [0u32, 100, 10_000]
            .iter()
            .map(|&spin| {
                Runtime::run(Config::new(seed).with_delay_bound(2).with_spin(spin), gate_mix_kernel)
            })
            .collect();
        let base = &runs[0];
        let base_ect = base.ect.as_ref().expect("traced").render();
        for r in &runs[1..] {
            assert_eq!(r.outcome, base.outcome, "seed {seed}");
            assert_eq!(r.fingerprint, base.fingerprint, "seed {seed}");
            assert_eq!(r.schedule, base.schedule, "seed {seed}: same decisions");
            assert_eq!(
                r.ect.as_ref().expect("traced").render(),
                base_ect,
                "seed {seed}: spin budget leaked into the trace"
            );
        }
    }
}
