//! Per-strategy guarantees of the pluggable scheduling layer.
//!
//! Every strategy (native, random, PCT) must uphold the runtime's two
//! core contracts:
//!
//! 1. **Determinism** — equal seeds under the same strategy replay
//!    byte-identical traces;
//! 2. **Replayability** — every scheduling decision lands in the
//!    decision log, so re-running under [`Config::with_replay`] (with a
//!    different seed) reproduces the trace byte-for-byte.
//!
//! Plus the PCT-specific bound: a `pct:<depth>:<length>` run performs at
//! most `depth − 1` priority-change points, whatever the seed.

use goat_runtime::{go_named, gosched, Chan, Config, Mutex, Runtime, StrategyKind, WaitGroup};
use proptest::prelude::*;
use std::sync::Arc;

/// A deadlock-free workload with enough scheduling freedom that
/// different strategies actually take different paths: three producers
/// over a shared buffered channel, a mutex-protected critical section
/// and a draining consumer.
fn workload() {
    let ch: Chan<u8> = Chan::new(2);
    let mu = Arc::new(Mutex::new());
    let wg = WaitGroup::new();
    for w in 0..3u8 {
        wg.add(1);
        let tx = ch.clone();
        let mu = Arc::clone(&mu);
        let wg = wg.clone();
        let name: &'static str = ["producer-0", "producer-1", "producer-2"][w as usize];
        go_named(name, move || {
            for n in 0..3u8 {
                mu.lock();
                tx.send(w * 10 + n);
                mu.unlock();
                gosched();
            }
            wg.done();
        });
    }
    {
        let rx = ch.clone();
        go_named("consumer", move || {
            for _ in 0..9 {
                rx.recv();
            }
        });
    }
    wg.wait();
}

fn run(seed: u64, strategy: StrategyKind) -> goat_runtime::RunResult {
    Runtime::run(
        Config::new(seed).with_delay_bound(2).with_strategy(strategy).with_trace(true),
        workload,
    )
}

const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Native,
    StrategyKind::Random,
    StrategyKind::Pct { depth: 3, length: 64 },
    StrategyKind::Pct { depth: 8, length: 512 },
];

#[test]
fn equal_seeds_replay_identical_traces_per_strategy() {
    for strategy in STRATEGIES {
        let a = run(42, strategy);
        let b = run(42, strategy);
        assert!(a.clean(), "{strategy}: workload is deadlock-free");
        assert_eq!(a.fingerprint, b.fingerprint, "{strategy}: schedule fingerprints");
        assert_eq!(a.ect, b.ect, "{strategy}: same seed must replay the same trace");
    }
}

#[test]
fn decision_log_replays_byte_identical_traces_per_strategy() {
    for strategy in STRATEGIES {
        let original = run(7, strategy);
        assert!(original.clean(), "{strategy}: workload is deadlock-free");
        // Replay the recorded schedule under a *different* seed and the
        // *default* strategy: every decision the strategy made must have
        // been logged, or the replayed interleaving drifts.
        let replayed = Runtime::run(
            Config::new(999_999).with_trace(true).with_replay(original.schedule.clone()),
            workload,
        );
        assert!(!replayed.replay_diverged, "{strategy}: replay must not diverge");
        assert_eq!(
            original.ect, replayed.ect,
            "{strategy}: decision-log replay must reproduce the trace byte-for-byte"
        );
    }
}

#[test]
fn strategies_actually_differ() {
    // Distinct strategies at the same seed should produce distinct
    // interleavings on this workload — otherwise the plug point is
    // vacuous. Compare schedule fingerprints pairwise.
    let fps: Vec<u64> = STRATEGIES.iter().map(|s| run(5, *s).fingerprint).collect();
    assert_ne!(fps[0], fps[1], "native vs random");
    assert_ne!(fps[0], fps[2], "native vs pct");
}

#[test]
fn pct_counts_its_priority_changes() {
    // With depth 8 over a short window the change points are dense
    // enough that at least one demotion fires on this workload.
    let r = run(3, StrategyKind::Pct { depth: 8, length: 32 });
    assert!(r.clean());
    assert!(r.priority_changes >= 1, "expected at least one PCT demotion");
    assert!(r.priority_changes <= 7, "never more than depth − 1 changes");
}

#[test]
fn non_pct_strategies_report_zero_priority_changes() {
    for strategy in [StrategyKind::Native, StrategyKind::Random] {
        let r = run(9, strategy);
        assert_eq!(r.priority_changes, 0, "{strategy}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The PCT bound, property-tested: for any seed and any
    /// (depth, length) configuration, the number of priority changes a
    /// run performs never exceeds `depth − 1`.
    #[test]
    fn pct_priority_changes_never_exceed_depth(
        seed in 0u64..10_000,
        depth in 1u32..12,
        length in 1u32..2048,
    ) {
        let r = run(seed, StrategyKind::Pct { depth, length });
        prop_assert!(r.clean(), "workload is deadlock-free by construction");
        prop_assert!(
            r.priority_changes < depth || depth == 1 && r.priority_changes == 0,
            "pct:{depth}:{length} seed {seed}: {} changes exceeds depth − 1",
            r.priority_changes
        );
    }

    /// Determinism holds for arbitrary PCT configurations, not just the
    /// pinned ones.
    #[test]
    fn pct_runs_are_deterministic(seed in 0u64..10_000, depth in 1u32..10) {
        let strategy = StrategyKind::Pct { depth, length: 128 };
        let a = run(seed, strategy);
        let b = run(seed, strategy);
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.priority_changes, b.priority_changes);
        prop_assert_eq!(a.ect, b.ect);
    }
}
