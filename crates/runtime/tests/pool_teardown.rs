//! Worker-pool regression tests that need their own process: the pool
//! is a process-global created on first use, and these tests pin its
//! environment knobs (`GOAT_POOL_MAX_IDLE`, `GOAT_TEARDOWN_TIMEOUT_MS`)
//! before that first use. Everything lives in ONE `#[test]` so the env
//! is set exactly once, ahead of any pool activity.

use goat_runtime::{go, go_named, pool, Chan, Config, Runtime, WaitGroup};
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

const MAX_IDLE: usize = 4;
const TEARDOWN_MS: u64 = 300;

fn settle(cond: impl Fn() -> bool) {
    for _ in 0..200 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("pool did not settle");
}

#[test]
fn idle_bound_holds_and_wedged_workers_are_abandoned() {
    // Must precede the first pool checkout anywhere in this process.
    std::env::set_var("GOAT_POOL_MAX_IDLE", MAX_IDLE.to_string());
    std::env::set_var("GOAT_TEARDOWN_TIMEOUT_MS", TEARDOWN_MS.to_string());

    // -- no idle-thread leak past GOAT_POOL_MAX_IDLE ------------------
    // 12 goroutines (3× the idle cap) all complete; after the runtime
    // is torn down, at most MAX_IDLE workers may stay parked and the
    // surplus must have retired.
    let r = Runtime::run(Config::new(1), || {
        let wg = WaitGroup::new();
        for _ in 0..(3 * MAX_IDLE) {
            wg.add(1);
            let wg = wg.clone();
            go(move || wg.done());
        }
        wg.wait();
    });
    assert!(r.clean(), "{:?}", r.outcome);

    // Workers re-park just after the run's join loop observes them
    // done, so poll until the pool fully quiesces — every spawned
    // worker has either retired or landed on the idle stack. (Checking
    // only `idle_now <= MAX_IDLE` races: a straggler still between job
    // completion and park would re-park during the next phase and top
    // the idle stack back up to the cap.)
    settle(|| {
        let s = pool::stats();
        s.threads_spawned == s.workers_retired + s.idle_now as u64
    });
    let s = pool::stats();
    assert!(
        s.idle_now <= MAX_IDLE,
        "idle stack leaked past GOAT_POOL_MAX_IDLE: {} > {MAX_IDLE}",
        s.idle_now
    );
    assert!(s.threads_spawned > MAX_IDLE as u64, "scenario must oversubscribe the cap");
    assert!(s.workers_retired >= 1, "surplus workers must retire, stats: {s:?}");

    // -- wedged worker abandoned at the teardown deadline -------------
    // The goroutine swallows the shutdown unwind and then stalls
    // outside all runtime primitives — the historical hang. Teardown
    // must give up on it after GOAT_TEARDOWN_TIMEOUT_MS and its worker
    // must be written off, not returned to the idle stack.
    let abandoned_before = pool::stats().abandoned;
    let t0 = Instant::now();
    let r = Runtime::run(Config::new(2), || {
        let ch: Chan<u8> = Chan::new(0);
        go_named("wedger", move || {
            let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                ch.recv(); // parks forever; unwound at shutdown
            }));
            // Wedged: off the scheduler, invisible to the parker.
            std::thread::sleep(Duration::from_secs(10));
        });
        goat_runtime::gosched();
    });
    let elapsed = t0.elapsed();
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    assert_eq!(r.alive_at_end.len(), 1, "the wedger must be reported leaked");
    assert!(
        elapsed < Duration::from_secs(3),
        "teardown must abandon the wedged worker within the deadline, took {elapsed:?}"
    );
    let s = pool::stats();
    assert!(
        s.abandoned > abandoned_before,
        "abandoned counter must record the written-off worker, stats: {s:?}"
    );

    // -- abandoned workers are replaced -------------------------------
    // The pool must not bleed capacity: writing off a wedged worker
    // spawns a parked replacement (up to the idle cap), so the next
    // checkout still finds a warm thread.
    assert!(s.workers_replaced >= 1, "pool must replace the abandoned worker, stats: {s:?}");
    assert!(
        (1..=MAX_IDLE).contains(&s.idle_now),
        "replacement must land on the idle stack within the cap, stats: {s:?}"
    );
    // And the replacement is actually usable: a fresh run checks out
    // workers without spawning beyond what the scenario needs.
    let r = Runtime::run(Config::new(3), || {
        let wg = WaitGroup::new();
        wg.add(1);
        let wg2 = wg.clone();
        go(move || wg2.done());
        wg.wait();
    });
    assert!(r.clean(), "{:?}", r.outcome);
}
