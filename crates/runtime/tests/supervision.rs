//! Supervision integration tests: the per-iteration wall-clock watchdog
//! (`iter_timeout_ms`), its cooperative → wedged escalation, and the
//! `GOAT_FAULT` injection harness.
//!
//! Every test takes a `faultpoint::scoped` guard — even the ones that
//! inject nothing (via a seed that no test config uses) — so the whole
//! binary serializes on the fault plan and a probability fault installed
//! by one test can never leak into a concurrently running one.

use goat_runtime::faultpoint::{self};
use goat_runtime::{gosched, Config, RunOutcome, Runtime, TimeoutPhase};
use std::time::Duration;

/// A plan that can never fire (no test uses this seed): serialization
/// without injection.
const INERT: &str = "iter:wedge:seed=999999999";

/// Wedged runs leave a stalled goroutine behind; keep the teardown
/// deadline short so each such test costs milliseconds, not the 5 s
/// default.
fn short_teardown() {
    std::env::set_var("GOAT_TEARDOWN_TIMEOUT_MS", "100");
}

#[test]
fn watchdog_does_not_misfire_on_fast_programs() {
    let _g = faultpoint::scoped(INERT);
    let r = Runtime::run(Config::new(1).with_iter_timeout_ms(Some(5_000)), || {
        gosched();
    });
    assert!(matches!(r.outcome, RunOutcome::Completed), "{:?}", r.outcome);
}

#[test]
fn cooperative_timeout_fires_for_spinning_program() {
    let _g = faultpoint::scoped(INERT);
    let r = Runtime::run(
        // The step watchdog must not win the race: the point of the
        // wall-clock watchdog is catching what max_steps cannot.
        Config::new(1).with_iter_timeout_ms(Some(60)).with_max_steps(u64::MAX),
        || loop {
            gosched();
        },
    );
    match r.outcome {
        RunOutcome::TimedOut { phase, elapsed_ms } => {
            assert_eq!(phase, TimeoutPhase::Cooperative);
            assert!(elapsed_ms >= 60, "elapsed {elapsed_ms} ms");
        }
        other => panic!("expected cooperative timeout, got {other:?}"),
    }
}

#[test]
fn wedged_timeout_fires_for_natively_stalled_program() {
    let _g = faultpoint::scoped(INERT);
    short_teardown();
    // The goroutine stalls *outside* every runtime primitive, so the
    // cooperative flag is never observed; only the hard deadline can
    // reclaim the run.
    let r = Runtime::run(Config::new(1).with_iter_timeout_ms(Some(40)), || {
        std::thread::sleep(Duration::from_millis(400));
    });
    match r.outcome {
        RunOutcome::TimedOut { phase, elapsed_ms } => {
            assert_eq!(phase, TimeoutPhase::Wedged);
            assert!(elapsed_ms >= 40, "elapsed {elapsed_ms} ms");
        }
        other => panic!("expected wedged timeout, got {other:?}"),
    }
}

#[test]
fn injected_spin_fault_times_out_cooperatively() {
    let _g = faultpoint::scoped("iter:spin:seed=17");
    let before = faultpoint::injected();
    let r = Runtime::run(
        Config::new(17).with_iter_timeout_ms(Some(50)).with_max_steps(u64::MAX),
        || unreachable!("body replaced by the injected fault"),
    );
    assert!(
        matches!(r.outcome, RunOutcome::TimedOut { phase: TimeoutPhase::Cooperative, .. }),
        "{:?}",
        r.outcome
    );
    assert!(faultpoint::injected() > before, "injection must be counted");
}

#[test]
fn injected_wedge_fault_hits_the_hard_deadline() {
    let _g = faultpoint::scoped("iter:wedge:seed=17");
    short_teardown();
    let r = Runtime::run(Config::new(17).with_iter_timeout_ms(Some(40)), || {
        unreachable!("body replaced by the injected fault")
    });
    assert!(
        matches!(r.outcome, RunOutcome::TimedOut { phase: TimeoutPhase::Wedged, .. }),
        "{:?}",
        r.outcome
    );
}

#[test]
fn injected_wedge_on_pool_worker_is_abandoned_and_replaced() {
    let _g = faultpoint::scoped("iter:wedge:seed=17");
    short_teardown();
    let before = goat_runtime::pool::stats();
    let r = Runtime::run(Config::new(17).with_iter_timeout_ms(Some(40)).with_pool(true), || {
        unreachable!("body replaced by the injected fault")
    });
    assert!(
        matches!(r.outcome, RunOutcome::TimedOut { phase: TimeoutPhase::Wedged, .. }),
        "{:?}",
        r.outcome
    );
    let after = goat_runtime::pool::stats();
    assert!(
        after.abandoned > before.abandoned,
        "wedged worker must be abandoned: {before:?} -> {after:?}"
    );
    assert!(
        after.workers_replaced > before.workers_replaced,
        "pool must spawn a replacement for the abandoned worker: {before:?} -> {after:?}"
    );
}

#[test]
fn injected_panic_fault_crashes_the_run() {
    let _g = faultpoint::scoped("iter:panic:seed=17");
    let r = Runtime::run(Config::new(17), || unreachable!("body replaced by the injected fault"));
    match r.outcome {
        RunOutcome::Panicked { msg, .. } => {
            assert!(msg.contains("injected fault"), "{msg}");
        }
        other => panic!("expected panic, got {other:?}"),
    }
}

#[test]
fn injected_fault_leaves_other_seeds_untouched() {
    let _g = faultpoint::scoped("iter:panic:seed=17");
    let r = Runtime::run(Config::new(18), || {
        gosched();
    });
    assert!(matches!(r.outcome, RunOutcome::Completed), "{:?}", r.outcome);
}

#[test]
fn pool_checkout_fault_is_an_infra_failure() {
    let _g = faultpoint::scoped("pool_checkout:err:1");
    let r = Runtime::run(Config::new(3).with_pool(true), || {
        gosched();
    });
    match r.outcome {
        RunOutcome::InfraFailure { reason } => {
            assert!(reason.contains("pool_checkout"), "{reason}");
        }
        other => panic!("expected infra failure, got {other:?}"),
    }
}

#[test]
fn pool_checkout_fault_applies_to_unpooled_spawns_too() {
    let _g = faultpoint::scoped("pool_checkout:err:1");
    let r = Runtime::run(Config::new(3).with_pool(false), || {
        gosched();
    });
    assert!(matches!(r.outcome, RunOutcome::InfraFailure { .. }), "{:?}", r.outcome);
}
