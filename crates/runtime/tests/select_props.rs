//! Property-based tests for `select` semantics: readiness, progress,
//! pseudo-random fairness over ready cases, and commit-exactly-once
//! under arbitrary channel pre-states.

use goat_runtime::{go_named, Chan, Config, Runtime, Select};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The pre-state of a channel participating in a select.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pre {
    /// Buffered cap 1, empty (recv not ready; send ready).
    Empty,
    /// Buffered cap 1, holding one value (recv ready; send not).
    Full,
    /// Closed (recv ready with None; send-case would panic — the
    /// generator never pairs Closed with send cases).
    Closed,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CaseKind {
    Recv,
    Send,
}

fn case_strategy() -> impl Strategy<Value = (Pre, CaseKind)> {
    prop_oneof![
        Just((Pre::Empty, CaseKind::Recv)),
        Just((Pre::Full, CaseKind::Recv)),
        Just((Pre::Closed, CaseKind::Recv)),
        Just((Pre::Empty, CaseKind::Send)),
        Just((Pre::Full, CaseKind::Send)),
    ]
}

/// Is this case ready to fire given its pre-state?
fn ready(pre: Pre, kind: CaseKind) -> bool {
    match (pre, kind) {
        (Pre::Empty, CaseKind::Recv) => false,
        (Pre::Full, CaseKind::Recv) => true,
        (Pre::Closed, CaseKind::Recv) => true,
        (Pre::Empty, CaseKind::Send) => true,
        (Pre::Full, CaseKind::Send) => false,
        (Pre::Closed, CaseKind::Send) => unreachable!("generator avoids this"),
    }
}

fn run_select(cases: &[(Pre, CaseKind)], seed: u64) -> Option<usize> {
    let cases = cases.to_vec();
    let chosen = Arc::new(AtomicUsize::new(usize::MAX));
    let chosen2 = Arc::clone(&chosen);
    let r = Runtime::run(Config::new(seed).with_native_preempt_prob(0.0), move || {
        let chans: Vec<Chan<u8>> = cases
            .iter()
            .map(|(pre, _)| {
                let ch: Chan<u8> = Chan::new(1);
                match pre {
                    Pre::Empty => {}
                    Pre::Full => ch.send(1),
                    Pre::Closed => ch.close(),
                }
                ch
            })
            .collect();
        let mut sel: Select<usize> = Select::new();
        for (i, (_, kind)) in cases.iter().enumerate() {
            sel = match kind {
                CaseKind::Recv => sel.recv(&chans[i], move |_| i),
                CaseKind::Send => sel.send(&chans[i], 9, move || i),
            };
        }
        let picked = sel.default(|| usize::MAX).run();
        chosen2.store(picked, Ordering::SeqCst);
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    let v = chosen.load(Ordering::SeqCst);
    (v != usize::MAX).then_some(v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A select fires some *ready* case iff one exists; with default it
    /// never blocks.
    #[test]
    fn select_fires_exactly_a_ready_case(
        cases in prop::collection::vec(case_strategy(), 1..5),
        seed in 0u64..1000,
    ) {
        let any_ready = cases.iter().any(|&(p, k)| ready(p, k));
        match run_select(&cases, seed) {
            Some(i) => {
                prop_assert!(any_ready, "fired with nothing ready");
                prop_assert!(ready(cases[i].0, cases[i].1), "fired a non-ready case {i}");
            }
            None => prop_assert!(!any_ready, "took default although a case was ready"),
        }
    }

    /// Across seeds, every ready case gets picked at least once
    /// (pseudo-random choice among ready cases, per the Go spec).
    #[test]
    fn all_ready_cases_are_reachable(cases in prop::collection::vec(case_strategy(), 2..4)) {
        let ready_set: Vec<usize> = (0..cases.len())
            .filter(|&i| ready(cases[i].0, cases[i].1))
            .collect();
        prop_assume!(ready_set.len() >= 2);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..120u64 {
            if let Some(i) = run_select(&cases, seed) {
                seen.insert(i);
            }
            if seen.len() == ready_set.len() {
                break;
            }
        }
        prop_assert_eq!(
            seen.len(),
            ready_set.len(),
            "some ready case starved across 120 seeds: picked {:?} of {:?}",
            seen,
            ready_set
        );
    }
}

/// A blocked select commits exactly once even when multiple producers
/// race to wake it.
#[test]
fn blocked_select_commits_exactly_once() {
    for seed in 0..40u64 {
        // The drain loop below assumes yielding lets a starved producer
        // run (native round-robin liveness); pin the native strategy so
        // a PCT environment can't starve the loser past main's exit.
        let cfg = Config::new(seed).with_strategy(goat_runtime::StrategyKind::Native);
        let r = Runtime::run(cfg, || {
            let a: Chan<u8> = Chan::new(0);
            let b: Chan<u8> = Chan::new(0);
            for (name, ch) in [("pa", a.clone()), ("pb", b.clone())] {
                go_named(name, move || {
                    // both producers race; the loser must remain blocked
                    // only until the main drains it afterwards
                    ch.send(1);
                });
            }
            let _ = Select::new().recv(&a, |_| 0).recv(&b, |_| 1).run();
            // drain the losing producer so the program exits cleanly
            let (da, db) = (a.clone(), b.clone());
            let got_a = da.try_recv().is_some();
            if !got_a {
                let _ = db.try_recv();
            }
            // one of them may still be mid-flight: drain both blocking
            // sides via non-blocking retries + yields
            for _ in 0..10 {
                goat_runtime::gosched();
                let _ = da.try_recv();
                let _ = db.try_recv();
            }
        });
        assert!(r.clean(), "seed {seed}: {:?} {:?}", r.outcome, r.alive_at_end);
    }
}
