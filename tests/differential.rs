//! Differential tests: the fused dense-ID single-pass analysis plane
//! must be observably identical to the retained legacy multi-pass
//! reference (`goat_core::coverage::reference`) — same covered
//! requirement sets, same per-goroutine vectors, same universe growth
//! (CU ids and requirement keys, in order), same goroutine trees, same
//! sync pairs, same verdicts.
//!
//! Two trace sources feed the comparison: real ECTs produced by running
//! every GoKer kernel under arbitrary seeds/delay bounds, and synthetic
//! event soups that explore corners real schedules rarely produce
//! (orphan `SelectEnd`s, cross-goroutine unblocks of never-blocked
//! goroutines, completions at mismatched CU kinds, internal-goroutine
//! interleavings).

use goat::core::coverage::{extract_sync_pairs, reference};
use goat::core::{deadlock_check, EctBuffers, Program};
use goat::model::{Cu, CuKind, Istr, ReqKey, RequirementUniverse};
use goat::runtime::{Config, Runtime};
use goat::trace::{BlockReason, Ect, Event, EventKind, GTree, Gid, RId, SelCaseFlavor, VTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Assert every observable output of the fused plane equals the
/// reference pipeline's on `ect`. Runs the fused pass twice through the
/// same `EctBuffers` so buffer recycling itself is under test.
fn check_equivalence(ect: &Ect) {
    // Reference: three independent walks, BTree state everywhere.
    let mut ref_universe = RequirementUniverse::new();
    let ref_cov = reference::extract_coverage(ect, &mut ref_universe);
    let ref_tree = GTree::from_ect(ect);
    let ref_pairs = extract_sync_pairs(ect);

    let mut bufs = EctBuffers::new();
    for round in 0..2 {
        let mut universe = RequirementUniverse::new();
        let analysis = bufs.analyze(ect, &mut universe, true);

        let covered: BTreeSet<ReqKey> = analysis.coverage.covered.iter().collect();
        assert_eq!(covered, ref_cov.covered, "covered set diverged (round {round})");
        let per_g: BTreeMap<Gid, BTreeSet<ReqKey>> =
            analysis.coverage.per_g.iter().map(|(g, s)| (*g, s.iter().collect())).collect();
        assert_eq!(per_g, ref_cov.per_g, "per-goroutine vectors diverged (round {round})");

        // Universe growth must match in *order*, not just as a set: CU
        // ids and requirement rows feed the reports.
        let keys: Vec<ReqKey> = universe.iter().copied().collect();
        let ref_keys: Vec<ReqKey> = ref_universe.iter().copied().collect();
        assert_eq!(keys, ref_keys, "universe requirement rows diverged (round {round})");
        assert_eq!(universe.table(), ref_universe.table(), "CU tables diverged (round {round})");

        assert_eq!(analysis.tree, ref_tree, "goroutine tree diverged (round {round})");
        assert_eq!(
            deadlock_check(&analysis.tree),
            deadlock_check(&ref_tree),
            "verdict diverged (round {round})"
        );
        assert_eq!(
            analysis.sync_pairs.expect("sync pairs requested"),
            ref_pairs,
            "sync pairs diverged (round {round})"
        );
        bufs.reclaim(analysis.coverage);
    }
}

/// A random but *plausible-shaped* event soup: dense seqs, a small pool
/// of goroutines and CU sites, event kinds weighted towards the arms the
/// coverage extractor actually dispatches on.
fn synth_trace(seed: u64) -> Ect {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(0..400usize);
    let n_g = rng.gen_range(1..7u64);
    let cu_kinds = [
        CuKind::Send,
        CuKind::Recv,
        CuKind::Close,
        CuKind::Lock,
        CuKind::Unlock,
        CuKind::Wait,
        CuKind::Add,
        CuKind::Done,
        CuKind::Signal,
        CuKind::Broadcast,
        CuKind::Go,
        CuKind::Select,
        CuKind::Range,
    ];
    let cus: Vec<Cu> = (0..10)
        .map(|i| Cu::new("synth/diff.rs", 10 + i, cu_kinds[i as usize % cu_kinds.len()]))
        .collect();
    let reasons = [
        BlockReason::Send,
        BlockReason::Recv,
        BlockReason::Select,
        BlockReason::Sync,
        BlockReason::Cond,
        BlockReason::WaitGroup,
    ];
    let flavors = [SelCaseFlavor::Send, SelCaseFlavor::Recv, SelCaseFlavor::Default];

    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let g = Gid(rng.gen_range(0..n_g));
        let cu = if rng.gen_bool(0.8) { Some(cus[rng.gen_range(0..cus.len())]) } else { None };
        let kind = match rng.gen_range(0..16u32) {
            0 => EventKind::GoCreate {
                new_g: Gid(rng.gen_range(0..n_g)),
                name: Istr::new("w"),
                internal: rng.gen_bool(0.25),
            },
            1 => EventKind::GoBlock {
                reason: reasons[rng.gen_range(0..reasons.len())],
                holder_cu: if rng.gen_bool(0.3) {
                    Some(cus[rng.gen_range(0..cus.len())])
                } else {
                    None
                },
                holder: if rng.gen_bool(0.3) { Some(Gid(rng.gen_range(0..n_g))) } else { None },
            },
            2 => EventKind::GoUnblock { g: Gid(rng.gen_range(0..n_g)) },
            3 => EventKind::SelectBegin {
                cases: (0..rng.gen_range(0..4usize))
                    .map(|_| {
                        (
                            flavors[rng.gen_range(0..2usize)],
                            if rng.gen_bool(0.7) {
                                Some(RId(rng.gen_range(0..5u64)))
                            } else {
                                None
                            },
                        )
                    })
                    .collect(),
                has_default: rng.gen_bool(0.4),
            },
            4 => EventKind::SelectEnd {
                chosen: if rng.gen_bool(0.2) { usize::MAX } else { rng.gen_range(0..4usize) },
                flavor: flavors[rng.gen_range(0..flavors.len())],
                ch: if rng.gen_bool(0.5) { Some(RId(rng.gen_range(0..5u64))) } else { None },
            },
            5 => EventKind::ChSend { ch: RId(rng.gen_range(0..5u64)) },
            6 => EventKind::ChRecv { ch: RId(rng.gen_range(0..5u64)), closed: rng.gen_bool(0.2) },
            7 => EventKind::ChClose { ch: RId(rng.gen_range(0..5u64)) },
            8 => EventKind::MuLock { mu: RId(rng.gen_range(0..5u64)) },
            9 => EventKind::MuUnlock { mu: RId(rng.gen_range(0..5u64)) },
            10 => EventKind::WgAdd { wg: RId(rng.gen_range(0..5u64)), delta: 1, count: 1 },
            11 => EventKind::WgDone { wg: RId(rng.gen_range(0..5u64)), count: 0 },
            12 => EventKind::WgWait { wg: RId(rng.gen_range(0..5u64)) },
            13 => EventKind::CondWait { cv: RId(rng.gen_range(0..5u64)) },
            14 => EventKind::GoSched { trace_stop: false },
            _ => EventKind::GoEnd,
        };
        events.push(Event { seq: i as u64, ts: VTime(i as u64 * 100), g, kind, cu });
    }
    Ect::from_events(events)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn fused_plane_matches_reference_on_synthetic_traces(seed in any::<u64>()) {
        check_equivalence(&synth_trace(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn fused_plane_matches_reference_on_kernel_traces(
        kidx in any::<usize>(),
        seed in 0u64..500,
        d in 0u32..3,
    ) {
        let kernels = goat::goker::all_kernels();
        let kernel = kernels[kidx % kernels.len()];
        let r = Runtime::run(
            Config::new(seed).with_delay_bound(d),
            move || Program::main(kernel),
        );
        if let Some(ect) = &r.ect {
            check_equivalence(ect);
        }
    }
}
