//! End-to-end pipeline tests spanning every crate: program → runtime →
//! trace → goroutine tree → deadlock verdict → coverage → reports, and
//! the baseline detectors on the same programs.

use goat::core::{
    analyze_run, bug_report, coverage_table, crosscheck, deadlock_check, extract_coverage,
    FnProgram, Goat, GoatConfig, GoatVerdict,
};
use goat::detectors::{BuiltinDetector, Detector, GoleakDetector, LockdlDetector, Symptom};
use goat::model::RequirementUniverse;
use goat::runtime::{go_named, gosched, Chan, Config, Mutex, Runtime, Select, WaitGroup};
use goat::trace::GTree;
use std::sync::Arc;

fn listing1() {
    let mu = Mutex::new();
    let status: Chan<u32> = Chan::new(0);
    {
        let (mu, status) = (mu.clone(), status.clone());
        go_named("Monitor", move || loop {
            let got = Select::new().recv(&status, |v| v).default(|| None).run();
            if got.is_some() {
                return;
            }
            mu.lock();
            mu.unlock();
        });
    }
    {
        let (mu, status) = (mu.clone(), status.clone());
        go_named("StatusChange", move || {
            mu.lock();
            status.send(1);
            mu.unlock();
        });
    }
    goat::runtime::time::sleep(std::time::Duration::from_millis(30));
}

#[test]
fn full_pipeline_on_listing1() {
    // Find a leaking schedule deterministically, then run the whole
    // offline pipeline against its trace.
    let mut found = None;
    for seed in 0..200 {
        let r = Runtime::run(Config::new(seed), listing1);
        crosscheck(&r).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        if matches!(analyze_run(&r), GoatVerdict::PartialDeadlock { .. }) {
            found = Some(r);
            break;
        }
    }
    let r = found.expect("the listing 1 leak manifests within 200 schedules");
    let ect = r.ect.as_ref().expect("traced");
    ect.well_formed().expect("well-formed trace");

    let tree = GTree::from_ect(ect);
    let verdict = deadlock_check(&tree);
    let GoatVerdict::PartialDeadlock { ref leaked } = verdict else {
        panic!("expected a leak, got {verdict}");
    };
    assert_eq!(leaked.len(), 2, "Monitor and StatusChange both leak");

    // The leaked goroutines are blocked on lock and send respectively.
    let mut reasons: Vec<String> =
        leaked.iter().map(|g| format!("{:?}", tree.get(*g).expect("node").last_event)).collect();
    reasons.sort();
    assert!(reasons[0].contains("Sync") || reasons[1].contains("Sync"), "{reasons:?}");
    assert!(reasons[0].contains("Send") || reasons[1].contains("Send"), "{reasons:?}");

    // Coverage extraction and report rendering work on the same trace.
    let mut universe = RequirementUniverse::new();
    let cov = extract_coverage(ect, &mut universe);
    assert!(!cov.covered.is_empty());
    assert!(universe.len() >= cov.covered.len());
    let report = bug_report("listing1", &verdict, ect);
    assert!(report.contains("Monitor"));
    assert!(report.contains("StatusChange"));
    let table = coverage_table(&universe, &cov.covered);
    assert!(table.contains("select"));
}

#[test]
fn detectors_disagree_exactly_as_designed() {
    // A leak invisible to builtin/lockdl but visible to GoAT and goleak.
    let leak = || {
        let ch: Chan<u8> = Chan::new(0);
        go_named("stuck", move || {
            ch.recv();
        });
        gosched();
    };
    let cfg = || Config::new(7).with_native_preempt_prob(0.0);
    let program: goat::detectors::ProgramFn = Arc::new(leak);

    let builtin = BuiltinDetector::new().run_once(cfg(), Arc::clone(&program));
    assert!(!builtin.detected);

    let lockdl = LockdlDetector::new().run_once(cfg(), Arc::clone(&program));
    assert!(!lockdl.detected);

    let goleak = GoleakDetector::new().run_once(cfg(), Arc::clone(&program));
    assert_eq!(goleak.symptom, Symptom::PartialDeadlock { leaked: 1 });

    let goat_tool = goat::core::GoatTool::new(0);
    let gv = goat_tool.run_once(cfg(), program);
    assert_eq!(gv.symptom, Symptom::PartialDeadlock { leaked: 1 });
}

#[test]
fn campaign_stops_at_bug_and_produces_replayable_ect() {
    let program = Arc::new(FnProgram::new("gdl", || {
        let wg = WaitGroup::new();
        wg.add(1);
        wg.wait(); // nobody ever calls done
    }));
    let goat = Goat::new(GoatConfig::default().with_iterations(5));
    let result = goat.test(program);
    assert_eq!(result.first_detection, Some(1));
    assert_eq!(result.bug, Some(GoatVerdict::GlobalDeadlock));
    let ect = result.bug_ect.expect("bug trace kept for reporting");
    assert!(ect.well_formed().is_ok());
    // The trace shows main blocked on the wait group.
    let tree = GTree::from_ect(&ect);
    let main = tree.root().expect("main node");
    assert!(format!("{:?}", main.last_event).contains("WaitGroup"), "{:?}", main.last_event);
}

#[test]
fn static_and_dynamic_cu_models_agree_on_listing1() {
    // Scan this test file statically; run the program dynamically; every
    // dynamically observed CU must be present in the static model.
    let src = std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/end_to_end.rs"));
    let table = goat::model::scan_sources([&src]).expect("scan");
    let r = Runtime::run(Config::new(3), listing1);
    let ect = r.ect.expect("traced");
    let mut missing = Vec::new();
    for ev in ect.iter() {
        if let Some(cu) = &ev.cu {
            if (ev.kind.is_op_completion()
                || matches!(ev.kind, goat::trace::EventKind::GoCreate { .. }))
                && table.lookup(&cu.file, cu.line, cu.kind).is_none()
            {
                missing.push(*cu);
            }
        }
    }
    assert!(missing.is_empty(), "dynamic CUs missing from static model: {missing:?}");
}
