//! End-to-end pipeline tests spanning every crate: program → runtime →
//! trace → goroutine tree → deadlock verdict → coverage → reports, and
//! the baseline detectors on the same programs.

use goat::core::{
    analyze_run, bug_report, coverage_table, crosscheck, deadlock_check, extract_coverage,
    FnProgram, Goat, GoatConfig, GoatVerdict,
};
use goat::detectors::{BuiltinDetector, Detector, GoleakDetector, LockdlDetector, Symptom};
use goat::model::RequirementUniverse;
use goat::runtime::{go_named, gosched, Chan, Config, Mutex, Runtime, Select, WaitGroup};
use goat::trace::GTree;
use std::sync::Arc;

fn listing1() {
    let mu = Mutex::new();
    let status: Chan<u32> = Chan::new(0);
    {
        let (mu, status) = (mu.clone(), status.clone());
        go_named("Monitor", move || loop {
            let got = Select::new().recv(&status, |v| v).default(|| None).run();
            if got.is_some() {
                return;
            }
            mu.lock();
            mu.unlock();
        });
    }
    {
        let (mu, status) = (mu.clone(), status.clone());
        go_named("StatusChange", move || {
            mu.lock();
            status.send(1);
            mu.unlock();
        });
    }
    goat::runtime::time::sleep(std::time::Duration::from_millis(30));
}

#[test]
fn full_pipeline_on_listing1() {
    // Find a leaking schedule deterministically, then run the whole
    // offline pipeline against its trace.
    let mut found = None;
    for seed in 0..200 {
        let r = Runtime::run(Config::new(seed), listing1);
        crosscheck(&r).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        if matches!(analyze_run(&r), GoatVerdict::PartialDeadlock { .. }) {
            found = Some(r);
            break;
        }
    }
    let r = found.expect("the listing 1 leak manifests within 200 schedules");
    let ect = r.ect.as_ref().expect("traced");
    ect.well_formed().expect("well-formed trace");

    let tree = GTree::from_ect(ect);
    let verdict = deadlock_check(&tree);
    let GoatVerdict::PartialDeadlock { ref leaked } = verdict else {
        panic!("expected a leak, got {verdict}");
    };
    assert_eq!(leaked.len(), 2, "Monitor and StatusChange both leak");

    // The leaked goroutines are blocked on lock and send respectively.
    let mut reasons: Vec<String> =
        leaked.iter().map(|g| format!("{:?}", tree.get(*g).expect("node").last_event)).collect();
    reasons.sort();
    assert!(reasons[0].contains("Sync") || reasons[1].contains("Sync"), "{reasons:?}");
    assert!(reasons[0].contains("Send") || reasons[1].contains("Send"), "{reasons:?}");

    // Coverage extraction and report rendering work on the same trace.
    let mut universe = RequirementUniverse::new();
    let cov = extract_coverage(ect, &mut universe);
    assert!(!cov.covered.is_empty());
    assert!(universe.len() >= cov.covered.len());
    let report = bug_report("listing1", &verdict, ect);
    assert!(report.contains("Monitor"));
    assert!(report.contains("StatusChange"));
    let table = coverage_table(&universe, &cov.covered);
    assert!(table.contains("select"));
}

#[test]
fn detectors_disagree_exactly_as_designed() {
    // A leak invisible to builtin/lockdl but visible to GoAT and goleak.
    let leak = || {
        let ch: Chan<u8> = Chan::new(0);
        go_named("stuck", move || {
            ch.recv();
        });
        gosched();
    };
    let cfg = || Config::new(7).with_native_preempt_prob(0.0);
    let program: goat::detectors::ProgramFn = Arc::new(leak);

    let builtin = BuiltinDetector::new().run_once(cfg(), Arc::clone(&program));
    assert!(!builtin.detected);

    let lockdl = LockdlDetector::new().run_once(cfg(), Arc::clone(&program));
    assert!(!lockdl.detected);

    let goleak = GoleakDetector::new().run_once(cfg(), Arc::clone(&program));
    assert_eq!(goleak.symptom, Symptom::PartialDeadlock { leaked: 1 });

    let goat_tool = goat::core::GoatTool::new(0);
    let gv = goat_tool.run_once(cfg(), program);
    assert_eq!(gv.symptom, Symptom::PartialDeadlock { leaked: 1 });
}

#[test]
fn campaign_stops_at_bug_and_produces_replayable_ect() {
    let program = Arc::new(FnProgram::new("gdl", || {
        let wg = WaitGroup::new();
        wg.add(1);
        wg.wait(); // nobody ever calls done
    }));
    let goat = Goat::new(GoatConfig::default().with_iterations(5));
    let result = goat.test(program);
    assert_eq!(result.first_detection, Some(1));
    assert_eq!(result.bug, Some(GoatVerdict::GlobalDeadlock));
    let ect = result.bug_ect.expect("bug trace kept for reporting");
    assert!(ect.well_formed().is_ok());
    // The trace shows main blocked on the wait group.
    let tree = GTree::from_ect(&ect);
    let main = tree.root().expect("main node");
    assert!(format!("{:?}", main.last_event).contains("WaitGroup"), "{:?}", main.last_event);
}

#[test]
fn static_and_dynamic_cu_models_agree_on_listing1() {
    // Scan this test file statically; run the program dynamically; every
    // dynamically observed CU must be present in the static model.
    let src = std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/end_to_end.rs"));
    let table = goat::model::scan_sources([&src]).expect("scan");
    let r = Runtime::run(Config::new(3), listing1);
    let ect = r.ect.expect("traced");
    let mut missing = Vec::new();
    for ev in ect.iter() {
        if let Some(cu) = &ev.cu {
            if (ev.kind.is_op_completion()
                || matches!(ev.kind, goat::trace::EventKind::GoCreate { .. }))
                && table.lookup(&cu.file, cu.line, cu.kind).is_none()
            {
                missing.push(*cu);
            }
        }
    }
    assert!(missing.is_empty(), "dynamic CUs missing from static model: {missing:?}");
}

// ---------------------------------------------------------------------
// Process isolation (GOAT_ISOLATE=proc): a dying worker must be
// autopsied into crash forensics, replaced, and survived — one crashing
// seed must never take the campaign down with it.
// ---------------------------------------------------------------------

use goat::core::{IsolateMode, Program};
use goat::runtime::faultpoint;

struct KernelProgram(&'static goat::goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

/// Run an isolated campaign whose iteration-1 worker is killed by `sig`
/// through the `worker:kill` fault profile.
fn worker_death_campaign(sig: i32) -> goat::core::CampaignResult {
    let kernel = goat::goker::by_name("moby28462").expect("kernel");
    let _plan = faultpoint::scoped(&format!("worker:kill:{sig}@seed=1"));
    let cfg = GoatConfig::default()
        .with_iterations(6)
        .with_seed0(1)
        .keep_running()
        .with_isolate(IsolateMode::Proc)
        .with_worker_cmd(env!("CARGO_BIN_EXE_goat"));
    Goat::new(cfg).test(Arc::new(KernelProgram(kernel)))
}

#[test]
fn sigabrt_worker_death_is_survived_with_forensics() {
    let spawned_before = goat::metrics::global().counter("isolate.workers_spawned").get();
    let result = worker_death_campaign(6);
    // The campaign survived the dead worker and ran its full budget.
    assert_eq!(result.records.len(), 6, "remaining iterations completed");
    assert_eq!(result.first_detection, Some(1));
    let Some(GoatVerdict::Crash { msg, detail }) = &result.bug else {
        panic!("expected a crash verdict, got {:?}", result.bug);
    };
    assert!(msg.contains("killed by signal 6 (SIGABRT)"), "{msg}");
    let detail = detail.as_ref().expect("crash forensics detail");
    assert!(detail.contains("stderr tail:"), "{detail}");
    assert!(detail.contains("injected fault: raising signal 6"), "{detail}");
    // Only iteration 1 crashed; a replacement worker served the rest.
    for rec in &result.records[1..] {
        assert!(!matches!(rec.verdict, GoatVerdict::Crash { .. }), "{:?}", rec.verdict);
    }
    let spawned_after = goat::metrics::global().counter("isolate.workers_spawned").get();
    assert!(spawned_after - spawned_before >= 2, "the dead worker was replaced");
    // The forensics detail reaches the machine-readable summary.
    let summary = result.to_json_summary().expect("summary");
    assert!(summary.contains("\"bug_detail\""), "{summary}");
    assert!(summary.contains("SIGABRT"), "{summary}");
}

#[test]
fn sigsegv_worker_death_is_survived_with_forensics() {
    let result = worker_death_campaign(11);
    assert_eq!(result.records.len(), 6, "remaining iterations completed");
    let Some(GoatVerdict::Crash { msg, .. }) = &result.bug else {
        panic!("expected a crash verdict, got {:?}", result.bug);
    };
    assert!(msg.contains("killed by signal 11 (SIGSEGV)"), "{msg}");
}

// ---------------------------------------------------------------------
// CLI exit codes: 0 clean, 1 bug detected, 2 quarantined/infra failure,
// 64 usage error.
// ---------------------------------------------------------------------

fn goat_cli() -> std::process::Command {
    let mut c = std::process::Command::new(env!("CARGO_BIN_EXE_goat"));
    c.stdout(std::process::Stdio::null()).stderr(std::process::Stdio::null());
    c
}

#[test]
fn cli_exit_codes_are_distinct_per_outcome() {
    // 64: usage errors — a bad flag, and an unknown kernel.
    assert_eq!(goat_cli().arg("-bogus").status().expect("run").code(), Some(64));
    let unknown = goat_cli().args(["-target", "no-such-kernel"]).status().expect("run");
    assert_eq!(unknown.code(), Some(64));
    // 0: a clean campaign (no detection within the budget).
    let clean = goat_cli().args(["-target", "grpc1424", "-freq", "1", "-seed", "1"]).status();
    assert_eq!(clean.expect("run").code(), Some(0));
    // 1: a bug detected.
    let bug = goat_cli().args(["-target", "moby28462", "-freq", "5", "-seed", "1"]).status();
    assert_eq!(bug.expect("run").code(), Some(1));
    // 2: quarantined without a verdict — every isolated run corrupts
    // its result frame, retries exhaust, and the infra streak trips.
    let quarantined = goat_cli()
        .args(["-target", "grpc1424", "-freq", "6", "-seed", "1", "-isolate", "proc"])
        .args(["-quarantine-after", "2", "-max-retries", "1"])
        .env("GOAT_FAULT", "worker:garbage-frame")
        .status()
        .expect("run");
    assert_eq!(quarantined.code(), Some(2));
}
