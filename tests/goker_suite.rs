//! Benchmark-level integration test: GoAT (across its delay-bound
//! variants) must expose **every** kernel of the 68-bug blocking suite —
//! the paper's headline result — with the symptom class the original
//! bug reports, and must stay silent on the fixed variants.

use goat::core::{Goat, GoatConfig, GoatVerdict, Program};
use goat::goker::{all_kernels, BugKernel, ExpectedSymptom, Rarity};
use goat::runtime::StrategyKind;
use std::sync::Arc;

/// Suite base config: the rarity labels and iteration budgets in this
/// file are calibrated against *native* scheduling, so the exploration
/// knobs are pinned explicitly — ambient `GOAT_STRATEGY`/`GOAT_GUIDED`
/// (the CI matrix legs) must not re-calibrate the suite.
fn native_config() -> GoatConfig {
    GoatConfig::default()
        .with_strategy(StrategyKind::Native)
        .with_guided(false)
        .with_saturation_window(None)
}

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn salt(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Try GOAT D0..D4 in turn; return the first bug verdict plus the delay
/// bound and iteration that exposed it.
fn expose(kernel: &'static BugKernel, budget: usize) -> Option<(u32, usize, GoatVerdict)> {
    for d in 0..=4u32 {
        let goat = Goat::new(
            native_config()
                .with_delay_bound(d)
                .with_iterations(budget)
                .with_seed0(1u64.wrapping_add(salt(kernel.name))),
        );
        let result = goat.test(Arc::new(KernelProgram(kernel)));
        if let (Some(iter), Some(bug)) = (result.first_detection, result.bug) {
            return Some((d, iter, bug));
        }
    }
    None
}

fn symptom_matches(expected: ExpectedSymptom, verdict: &GoatVerdict) -> bool {
    match expected {
        ExpectedSymptom::Leak => matches!(verdict, GoatVerdict::PartialDeadlock { .. }),
        ExpectedSymptom::GlobalDeadlock => {
            matches!(verdict, GoatVerdict::GlobalDeadlock | GoatVerdict::Hang)
        }
        ExpectedSymptom::LeakOrGlobal => matches!(
            verdict,
            GoatVerdict::PartialDeadlock { .. } | GoatVerdict::GlobalDeadlock | GoatVerdict::Hang
        ),
        ExpectedSymptom::Crash => matches!(verdict, GoatVerdict::Crash { .. }),
    }
}

#[test]
fn goat_exposes_all_68_kernels_with_expected_symptoms() {
    let mut failures = Vec::new();
    for kernel in all_kernels() {
        // Clamped: under a tight GOAT_ITER_TIMEOUT_MS every iteration
        // may burn its full watchdog allowance, so the raw budget
        // could stall the suite for minutes per kernel.
        match expose(kernel, kernel.rarity.clamped_iteration_budget()) {
            Some((d, iter, verdict)) => {
                if !symptom_matches(kernel.expected, &verdict) {
                    failures.push(format!(
                        "{}: wrong symptom {verdict} (expected {:?}; D{d}, iter {iter})",
                        kernel.name, kernel.expected
                    ));
                }
            }
            None => failures.push(format!("{}: not exposed by any delay bound", kernel.name)),
        }
    }
    assert!(failures.is_empty(), "suite failures:\n{}", failures.join("\n"));
}

#[test]
fn common_kernels_detected_on_first_native_run() {
    for kernel in all_kernels().into_iter().filter(|k| k.rarity == Rarity::Common) {
        let goat = Goat::new(
            native_config().with_iterations(3).with_seed0(1u64.wrapping_add(salt(kernel.name))),
        );
        let result = goat.test(Arc::new(KernelProgram(kernel)));
        assert!(
            matches!(result.first_detection, Some(i) if i <= 3),
            "{} is labelled Common but was not detected within 3 native runs",
            kernel.name
        );
    }
}

#[test]
fn very_rare_kernels_hide_from_native_execution() {
    for kernel in all_kernels().into_iter().filter(|k| k.rarity == Rarity::VeryRare) {
        let goat = Goat::new(
            native_config().with_iterations(100).with_seed0(1u64.wrapping_add(salt(kernel.name))),
        );
        let result = goat.test(Arc::new(KernelProgram(kernel)));
        assert!(
            result.first_detection.is_none(),
            "{} is labelled VeryRare but native D0 found it at iteration {:?}",
            kernel.name,
            result.first_detection
        );
    }
}

#[test]
fn schedule_dependent_kernels_also_pass_on_some_schedule() {
    // Non-deterministic bugs must have clean schedules too — otherwise
    // they would be trivially detectable and their rarity labels wrong.
    for kernel in all_kernels()
        .into_iter()
        .filter(|k| matches!(k.rarity, Rarity::Uncommon | Rarity::Rare | Rarity::VeryRare))
    {
        let mut saw_pass = false;
        for seed in 0..40u64 {
            let goat = Goat::new(native_config().with_iterations(1).with_seed0(seed * 7919 + 13));
            let result = goat.test(Arc::new(KernelProgram(kernel)));
            if !result.detected() {
                saw_pass = true;
                break;
            }
        }
        assert!(
            saw_pass,
            "{} never produced a clean run in 40 schedules; should it be Common?",
            kernel.name
        );
    }
}

#[test]
fn guided_exploration_finds_schedule_dependent_bugs_no_slower_than_random() {
    // The guided leg: over the schedule-dependent (Uncommon) class,
    // guided campaigns must reach first detection within the same
    // budget no slower — in aggregate, with generous slack — than the
    // unguided random-perturbation baseline. Per-kernel comparisons
    // would be noise (a lucky seed dominates a 120-iteration budget);
    // the class-level total is the meaningful signal.
    let class: Vec<&'static BugKernel> =
        all_kernels().into_iter().filter(|k| k.rarity == Rarity::Uncommon).collect();
    assert!(!class.is_empty(), "Uncommon class must be non-empty");
    let budget = Rarity::Uncommon.clamped_iteration_budget();
    let mut random_total = 0usize;
    let mut guided_total = 0usize;
    let mut random_detected = 0usize;
    let mut guided_detected = 0usize;
    for kernel in &class {
        let seed = 1u64.wrapping_add(salt(kernel.name));
        let base = native_config().with_delay_bound(2).with_iterations(budget).with_seed0(seed);
        let random = Goat::new(base.clone()).test(Arc::new(KernelProgram(kernel)));
        let guided = Goat::new(base.with_guided(true)).test(Arc::new(KernelProgram(kernel)));
        // A miss costs the full budget + 1, so undetected kernels hurt
        // whichever leg missed them.
        random_total += random.first_detection.unwrap_or(budget + 1);
        guided_total += guided.first_detection.unwrap_or(budget + 1);
        random_detected += usize::from(random.detected());
        guided_detected += usize::from(guided.detected());
    }
    assert!(
        guided_detected >= random_detected,
        "guided detections ({guided_detected}) fell below random ({random_detected}) \
         over {} Uncommon kernels",
        class.len()
    );
    // Generous slack: guided pays exploration overhead on easy kernels,
    // so require only that its aggregate time-to-first-detection stays
    // within 1.5× + a small constant of the random baseline.
    assert!(
        guided_total <= random_total * 3 / 2 + 5 * class.len(),
        "guided time-to-first-detection ({guided_total}) regressed past the slack \
         envelope of random ({random_total}) over {} kernels",
        class.len()
    );
}

#[test]
fn fixed_variants_are_never_flagged() {
    for program in goat::goker::fixed::all_fixed() {
        for d in [0u32, 2, 4] {
            let goat = Goat::new(native_config().with_delay_bound(d).with_iterations(40));
            let result = goat.test(Arc::clone(&program));
            assert!(
                !result.detected(),
                "fixed program {} flagged at D{d}: {:?}",
                program.name(),
                result.bug
            );
        }
    }
}
