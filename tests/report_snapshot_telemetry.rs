//! Telemetry-*on* variant of the report-snapshot guard.
//!
//! `tests/report_snapshot.rs` pins the campaign report JSON with
//! telemetry off. This binary (a separate process, because the
//! telemetry switch is process-global) re-runs the same pinned
//! campaigns with collection enabled and asserts that the only change
//! to the report is the added `telemetry` object: stripping it must
//! reproduce the committed telemetry-off snapshot byte-for-byte. This
//! proves the dense-ID requirement remap and the fused analysis plane
//! leak nowhere into report output, with telemetry both off and on.

use goat::core::{CampaignSummary, Goat, GoatConfig, Program};
use goat::goker::{by_name, BugKernel};
use goat::runtime::{faultpoint, StrategyKind};
use std::path::PathBuf;
use std::sync::Arc;

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

#[test]
fn telemetry_only_adds_the_telemetry_field() {
    // Same inert fault guard as report_snapshot.rs: panic injection from
    // other tests must not leak into these pinned campaigns.
    let _g = faultpoint::scoped("iter:panic:seed=999999999");
    goat::metrics::set_enabled(true);
    for (name, seed0, d) in [("etcd6708", 11u64, 2u32), ("moby28462", 17, 2)] {
        let kernel = by_name(name).expect("pinned kernel exists");
        let goat_tool = Goat::new(
            GoatConfig::default()
                .with_iterations(20)
                .with_seed0(seed0)
                .with_delay_bound(d)
                .with_parallelism(1)
                // Pinned explicitly so the PCT/guided CI legs (which set
                // GOAT_STRATEGY/GOAT_GUIDED process-wide) cannot perturb
                // the golden comparison.
                .with_strategy(StrategyKind::Native)
                .with_guided(false)
                .with_saturation_window(None)
                .keep_running(),
        );
        let result = goat_tool.test(Arc::new(KernelProgram(kernel)));
        let json = result.to_json_summary().expect("serializable");

        let mut parsed: CampaignSummary = serde_json::from_str(&json).expect("parseable report");
        let telemetry = parsed.telemetry.take().expect("telemetry collected when enabled");
        assert_eq!(telemetry.iterations, 20, "{name}: all iterations merged");
        assert_eq!(
            telemetry.analysis_ns.count, 20,
            "{name}: one fused-analysis timing per iteration"
        );
        assert!(
            telemetry.trace_pool.fresh + telemetry.trace_pool.recycled >= 20,
            "{name}: every traced iteration drew a buffer (fresh {} + recycled {})",
            telemetry.trace_pool.fresh,
            telemetry.trace_pool.recycled
        );

        let mut stripped = serde_json::to_string_pretty(&parsed).expect("serializable");
        stripped.push('\n');
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/snapshots")
            .join(format!("{name}_s{seed0}.json"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
        assert_eq!(
            stripped, want,
            "{name}: telemetry-on report (telemetry field stripped) drifted from the \
             telemetry-off snapshot — collection must not change deterministic output"
        );
    }
}
