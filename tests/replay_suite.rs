//! Suite-wide replay validation of the paper's claim that "by replaying
//! the program's ECT, GOAT detects all blocking bugs of GoKer": for
//! every kernel whose bug a campaign exposes, the recorded schedule must
//! re-trigger the *same* verdict deterministically, under a different
//! seed, as many times as desired.

use goat::core::{Goat, GoatConfig, Program};
use goat::goker::{all_kernels, BugKernel};
use goat::runtime::StrategyKind;
use std::sync::Arc;

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn salt(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn every_exposed_bug_replays_deterministically() {
    let mut replayed = 0usize;
    let mut failures = Vec::new();
    for kernel in all_kernels() {
        // Find the bug with whichever variant works fastest. The budget
        // is clamped against GOAT_ITER_TIMEOUT_MS so a tight watchdog
        // cannot turn the search into minutes of timed-out iterations.
        let budget = kernel.rarity.clamped_iteration_budget();
        let mut exposed = None;
        for d in [0u32, 2, 3, 4] {
            // Exposure budgets are calibrated against native
            // scheduling; pin it so the PCT CI leg (GOAT_STRATEGY=pct)
            // doesn't re-calibrate the search.
            let goat = Goat::new(
                GoatConfig::default()
                    .with_delay_bound(d)
                    .with_iterations(budget)
                    .with_seed0(1u64.wrapping_add(salt(kernel.name)))
                    .with_strategy(StrategyKind::Native)
                    .with_guided(false),
            );
            let result = goat.test(Arc::new(KernelProgram(kernel)));
            if let (Some(bug), Some(schedule)) = (result.bug, result.bug_schedule) {
                exposed = Some((bug, schedule));
                break;
            }
        }
        let Some((bug, schedule)) = exposed else {
            failures.push(format!("{}: never exposed", kernel.name));
            continue;
        };
        // Replay twice: identical verdict both times, no divergence.
        for round in 0..2 {
            let (verdict, run) = Goat::replay(Arc::new(KernelProgram(kernel)), schedule.clone());
            if run.replay_diverged {
                failures.push(format!("{}: replay diverged (round {round})", kernel.name));
                break;
            }
            if verdict != bug {
                failures.push(format!(
                    "{}: replay produced {verdict} instead of {bug} (round {round})",
                    kernel.name
                ));
                break;
            }
        }
        replayed += 1;
    }
    assert!(failures.is_empty(), "replay failures:\n{}", failures.join("\n"));
    assert_eq!(replayed, 68, "all 68 bugs exposed and replayed");
}
