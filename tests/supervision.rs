//! End-to-end campaign supervision: a single campaign survives an
//! injected wedged iteration, an injected telemetry-sink write error,
//! and an injected kernel panic — completing with correct TimedOut /
//! Crashed / dropped-event accounting — and a repeatedly crashing
//! kernel is quarantined instead of burning its budget.
//!
//! Lives in its own integration-test binary (= its own process) because
//! `GOAT_FAULT`, `GOAT_TELEMETRY`, and the teardown deadline resolve
//! the environment once, lazily, on first use; everything runs in ONE
//! `#[test]` so the env is pinned before any of it is touched.

use goat::core::{FnProgram, Goat, GoatConfig, GoatVerdict, Program};
use goat::runtime::Chan;
use std::sync::Arc;

fn clean_program() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("handshake", || {
        let ch: Chan<u8> = Chan::new(0);
        let tx = ch.clone();
        goat::runtime::go(move || tx.send(1));
        ch.recv();
    }))
}

fn crashing_program() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("crashy", || {
        let ch: Chan<u8> = Chan::new(0);
        ch.close();
        ch.send(1); // send on closed channel panics every run
    }))
}

#[test]
fn faulted_campaign_completes_with_correct_accounting() {
    // Must precede the first touch of the metrics crate / faultpoint.
    let stream =
        std::env::temp_dir().join(format!("goat_supervision_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&stream);
    std::env::set_var(goat::metrics::TELEMETRY_ENV, &stream);
    // Iteration seeds run 101..=120 below: wedge seed 105, panic seed
    // 112, and fail the telemetry sink after 30 successful writes.
    std::env::set_var(
        goat::runtime::faultpoint::FAULT_ENV,
        "iter:wedge:seed=105,iter:panic:seed=112,sink:err:after=30",
    );
    // A wedged iteration stalls teardown until this deadline.
    std::env::set_var("GOAT_TEARDOWN_TIMEOUT_MS", "150");

    // -- one campaign through all three faults ------------------------
    let goat = Goat::new(
        GoatConfig::default()
            .with_iterations(20)
            .with_seed0(101)
            .keep_running()
            .with_iter_timeout_ms(Some(80)),
    );
    let result = goat.test(clean_program());

    assert_eq!(result.records.len(), 20, "campaign must complete the full budget");
    assert!(result.quarantined.is_none());
    for rec in &result.records {
        match rec.seed {
            105 => assert!(
                matches!(rec.verdict, GoatVerdict::Hang),
                "wedged iteration must be recorded as a suspected hang, got {}",
                rec.verdict
            ),
            112 => match &rec.verdict {
                GoatVerdict::Crash { msg, .. } => {
                    assert!(msg.contains("injected fault"), "{msg}")
                }
                other => panic!("panic seed must record Crash, got {other}"),
            },
            _ => assert!(
                !matches!(rec.verdict, GoatVerdict::Hang | GoatVerdict::Crash { .. }),
                "seed {} unexpectedly failed: {}",
                rec.seed,
                rec.verdict
            ),
        }
    }

    // Supervision counters: exactly the injected faults were counted.
    assert!(goat::runtime::faultpoint::injected() >= 2, "both iter faults must fire");
    let reg = goat::metrics::global();
    assert_eq!(reg.counter_total("supervision.timeouts"), 1);
    assert_eq!(reg.counter_total("supervision.quarantines"), 0);

    // The sink died mid-campaign (write 31) and degraded instead of
    // killing the run: events after that point are counted, not written.
    assert!(!goat::metrics::sink::active(), "sink must be degraded");
    assert!(goat::metrics::sink::events_dropped() > 0);
    assert_eq!(
        reg.counter_total("telemetry.events_dropped"),
        goat::metrics::sink::events_dropped()
    );
    // Every surviving line parses (the vendored serde ignores unknown
    // fields, so one probe struct covers every event kind).
    #[derive(serde::Deserialize)]
    struct EventProbe {
        kind: String,
    }
    let raw = std::fs::read_to_string(&stream).expect("stream partially written");
    assert_eq!(raw.lines().count(), 30, "exactly the pre-fault writes reach the file");
    for line in raw.lines() {
        let probe: EventProbe = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("degraded sink left a torn line: {e}\n{line}"));
        assert!(!probe.kind.is_empty());
    }
    assert!(
        raw.lines().any(|l| l.contains("\"fault_injected\"")),
        "the wedge injection (iteration 5) must be in the stream prefix"
    );

    // Telemetry block survives sink degradation (it is independent).
    assert!(result.telemetry.is_some());

    // -- quarantine accounting ----------------------------------------
    let goat = Goat::new(
        GoatConfig::default()
            .with_iterations(10)
            .with_seed0(200)
            .keep_running()
            .with_quarantine_crashes(3),
    );
    let r = goat.test(crashing_program());
    assert_eq!(r.records.len(), 3, "quarantined after the crash streak");
    assert_eq!(r.skipped, 7);
    let reason = r.quarantined.as_deref().expect("quarantine reason");
    assert!(reason.contains("3 consecutive crashed iterations"), "{reason}");
    assert_eq!(reg.counter_total("supervision.quarantines"), 1);

    // -- infra failures are never bug evidence -------------------------
    // Every checkout fails, so every iteration exhausts its retries and
    // surfaces InfraFailure: the campaign must not claim a detection
    // (stop_on_bug stays armed and never fires) — quarantine is the
    // sole response.
    {
        let _g = goat::runtime::faultpoint::scoped("pool_checkout:err:1.0");
        let goat = Goat::new(
            GoatConfig::default()
                .with_iterations(8)
                .with_seed0(300)
                .with_max_retries(0)
                .with_quarantine_after(3),
        );
        let r = goat.test(clean_program());
        assert_eq!(r.first_detection, None, "harness fault forged into a detection");
        assert!(r.bug.is_none());
        assert!(r
            .records
            .iter()
            .all(|rec| matches!(rec.verdict, GoatVerdict::InfraFailure { .. })));
        let reason = r.quarantined.as_deref().expect("infra quarantine");
        assert!(reason.contains("3 consecutive infra failures"), "{reason}");
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.skipped, 5);
    }

    let _ = std::fs::remove_file(&stream);
}
