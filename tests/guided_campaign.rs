//! End-to-end guarantees of coverage-guided campaigns.
//!
//! Guided mode trades the fixed per-iteration configuration for a
//! bandit-selected one, but it must not trade away any of the
//! repository's determinism guarantees:
//!
//! * same seed → byte-identical summary JSON across runs,
//! * parallel executor → byte-identical to the sequential one,
//! * saturation early-stop → deterministic iteration count and a
//!   `SATURATED` report line.

use goat::core::{campaign_report, Goat, GoatConfig, Program};
use goat::goker::{by_name, BugKernel};
use goat::runtime::StrategyKind;
use std::sync::Arc;

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

/// Guided base config, exploration knobs pinned explicitly so ambient
/// `GOAT_STRATEGY`/`GOAT_GUIDED`/`GOAT_SATURATION_WINDOW` settings (the
/// CI matrix legs) cannot change what this binary tests.
fn guided_config(seed0: u64) -> GoatConfig {
    GoatConfig::default()
        .with_iterations(30)
        .with_seed0(seed0)
        .with_delay_bound(2)
        .with_parallelism(1)
        .with_strategy(StrategyKind::Native)
        .with_guided(true)
        .with_saturation_window(None)
        .keep_running()
}

fn summary_json(kernel: &'static BugKernel, cfg: GoatConfig) -> String {
    let result = Goat::new(cfg).test(Arc::new(KernelProgram(kernel)));
    result.to_json_summary().expect("serializable")
}

#[test]
fn guided_campaign_is_deterministic_across_runs() {
    for name in ["etcd6708", "cockroach1462"] {
        let kernel = by_name(name).expect("kernel exists");
        let a = summary_json(kernel, guided_config(7));
        let b = summary_json(kernel, guided_config(7));
        assert_eq!(a, b, "{name}: same-seed guided campaigns must be byte-identical");
        assert!(a.contains("\"guided\""), "{name}: summary carries the guided block");
    }
}

#[test]
fn guided_parallel_is_byte_identical_to_sequential() {
    for name in ["etcd6708", "cockroach1462"] {
        let kernel = by_name(name).expect("kernel exists");
        let seq = summary_json(kernel, guided_config(13));
        let par = summary_json(kernel, guided_config(13).with_parallelism(4));
        assert_eq!(
            seq, par,
            "{name}: the lag-capped claim window must make parallel guided campaigns \
             byte-identical to sequential ones"
        );
    }
}

#[test]
fn different_seeds_select_different_arm_sequences() {
    // Not a determinism property but a sanity check that the bandit
    // actually varies its choices with the seed: two far-apart seeds
    // should not pull the arms identically for 30 iterations.
    let kernel = by_name("etcd6708").expect("kernel exists");
    let a = summary_json(kernel, guided_config(7));
    let b = summary_json(kernel, guided_config(700_007));
    assert_ne!(a, b, "independent seeds should explore differently");
}

#[test]
fn saturation_window_stops_early_and_reports_saturated() {
    let kernel = by_name("etcd6708").expect("kernel exists");
    // etcd6708's reachable coverage plateaus within a handful of
    // iterations at D=2; a 6-iteration dry window must trip well before
    // the 200-iteration budget.
    let cfg = guided_config(7).with_iterations(200).with_saturation_window(Some(6));
    let result = Goat::new(cfg).test(Arc::new(KernelProgram(kernel)));
    let stopped_at = result.saturated.expect("saturation must trip");
    assert!(
        result.records.len() < 200,
        "saturation must stop the campaign early (ran {})",
        result.records.len()
    );
    assert_eq!(stopped_at, result.records.len(), "saturated points at the stopping iteration");
    let report = campaign_report("etcd6708", &result);
    assert!(
        report.contains("SATURATED: coverage stopped growing"),
        "report must carry the SATURATED line:\n{report}"
    );
    assert!(report.contains("--- guided exploration"), "report renders the per-arm block");

    // Deterministic: the same config saturates at the same iteration.
    let again = Goat::new(guided_config(7).with_iterations(200).with_saturation_window(Some(6)))
        .test(Arc::new(KernelProgram(kernel)));
    assert_eq!(again.saturated, Some(stopped_at));
}

#[test]
fn saturation_works_without_guided_mode_too() {
    // The early-stop is independent of the bandit: a plain native
    // campaign with a window saturates deterministically as well.
    let kernel = by_name("etcd6708").expect("kernel exists");
    let cfg =
        guided_config(11).with_guided(false).with_iterations(100).with_saturation_window(Some(5));
    let result = Goat::new(cfg).test(Arc::new(KernelProgram(kernel)));
    assert!(result.saturated.is_some(), "plain campaigns honor the window");
    assert!(result.guided.is_none(), "no guided block when guided mode is off");
    let json = result.to_json_summary().expect("serializable");
    assert!(json.contains("\"saturated\""), "summary records the stop point");
    assert!(!json.contains("\"guided\""), "no guided field for non-guided campaigns");
}
