//! Determinism and replay guarantees: identical seeds must reproduce
//! identical traces across the entire benchmark — the property that
//! makes GoAT's "minimum executions to expose" experiments meaningful
//! and failing schedules replayable.

use goat::core::Program;
use goat::runtime::{Config, Runtime};

fn trace_fingerprint(kernel: &'static goat::goker::BugKernel, seed: u64, d: u32) -> String {
    let cfg = Config::new(seed).with_delay_bound(d);
    let r = Runtime::run(cfg, move || Program::main(kernel));
    format!(
        "{:?}|{}|{}",
        r.outcome,
        r.steps,
        r.ect.map(|e| e.render()).unwrap_or_default()
    )
}

#[test]
fn every_kernel_replays_identically_for_a_fixed_seed() {
    for kernel in goat::goker::all_kernels() {
        for d in [0u32, 2] {
            let a = trace_fingerprint(kernel, 42, d);
            let b = trace_fingerprint(kernel, 42, d);
            assert_eq!(a, b, "{} is not deterministic at D{d}", kernel.name);
        }
    }
}

#[test]
fn different_seeds_explore_different_schedules() {
    // On a schedule-dependent kernel, iterating seeds must explore
    // different interleavings (otherwise iterating executions would be
    // pointless). Deterministic kernels may legitimately produce
    // identical traces across seeds.
    let kernel = goat::goker::by_name("moby28462").expect("kernel");
    let distinct: std::collections::BTreeSet<String> =
        (0..30u64).map(|s| trace_fingerprint(kernel, s, 0)).collect();
    assert!(
        distinct.len() >= 3,
        "30 seeds explored only {} distinct schedules",
        distinct.len()
    );
}

#[test]
fn traces_are_well_formed_across_the_suite() {
    for kernel in goat::goker::all_kernels() {
        for seed in [1u64, 99] {
            let r = Runtime::run(Config::new(seed).with_delay_bound(1), move || {
                Program::main(kernel)
            });
            if let Some(ect) = &r.ect {
                ect.well_formed().unwrap_or_else(|e| {
                    panic!("{} seed {seed}: malformed trace: {e}", kernel.name)
                });
            }
            goat::core::crosscheck(&r).unwrap_or_else(|e| {
                panic!("{} seed {seed}: trace/runtime disagree: {e}", kernel.name)
            });
        }
    }
}
