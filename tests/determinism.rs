//! Determinism and replay guarantees: identical seeds must reproduce
//! identical traces across the entire benchmark — the property that
//! makes GoAT's "minimum executions to expose" experiments meaningful
//! and failing schedules replayable.

use goat::core::Program;
use goat::runtime::{Config, Runtime};

fn trace_fingerprint(kernel: &'static goat::goker::BugKernel, seed: u64, d: u32) -> String {
    let cfg = Config::new(seed).with_delay_bound(d);
    let r = Runtime::run(cfg, move || Program::main(kernel));
    format!("{:?}|{}|{}", r.outcome, r.steps, r.ect.map(|e| e.render()).unwrap_or_default())
}

#[test]
fn every_kernel_replays_identically_for_a_fixed_seed() {
    for kernel in goat::goker::all_kernels() {
        for d in [0u32, 2] {
            let a = trace_fingerprint(kernel, 42, d);
            let b = trace_fingerprint(kernel, 42, d);
            assert_eq!(a, b, "{} is not deterministic at D{d}", kernel.name);
        }
    }
}

#[test]
fn different_seeds_explore_different_schedules() {
    // On a schedule-dependent kernel, iterating seeds must explore
    // different interleavings (otherwise iterating executions would be
    // pointless). Deterministic kernels may legitimately produce
    // identical traces across seeds.
    let kernel = goat::goker::by_name("moby28462").expect("kernel");
    let distinct: std::collections::BTreeSet<String> =
        (0..30u64).map(|s| trace_fingerprint(kernel, s, 0)).collect();
    assert!(distinct.len() >= 3, "30 seeds explored only {} distinct schedules", distinct.len());
}

// ---------------------------------------------------------------------
// Campaign-executor equivalence: the streaming parallel executor and the
// goroutine worker pool are pure performance features — a campaign's
// machine-readable summary must be byte-identical no matter how many
// host threads ran it or whether goroutines were pooled.
// ---------------------------------------------------------------------

use goat::core::{Goat, GoatConfig};
use proptest::prelude::*;
use std::sync::Arc;

struct KernelProgram(&'static goat::goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn campaign_summary_json(
    kernel: &'static goat::goker::BugKernel,
    d: u32,
    seed0: u64,
    iterations: usize,
    stop_on_bug: bool,
    parallelism: usize,
    pool: bool,
) -> String {
    let mut cfg = GoatConfig::default()
        .with_delay_bound(d)
        .with_iterations(iterations)
        .with_seed0(seed0)
        .with_parallelism(parallelism)
        .with_pool(pool);
    if !stop_on_bug {
        cfg = cfg.keep_running();
    }
    Goat::new(cfg)
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary serializes")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]
    #[test]
    fn campaign_summaries_identical_across_parallelism_and_pool(
        kidx in 0usize..12,
        d in 0u32..3,
        seed0 in 1u64..500,
        iterations in 4usize..10,
        stop_on_bug in any::<bool>(),
    ) {
        let kernels = goat::goker::all_kernels();
        let kernel = kernels[kidx % kernels.len()];
        let base = campaign_summary_json(kernel, d, seed0, iterations, stop_on_bug, 1, true);
        for parallelism in [1usize, 2, 8] {
            for pool in [true, false] {
                let json =
                    campaign_summary_json(kernel, d, seed0, iterations, stop_on_bug, parallelism, pool);
                prop_assert_eq!(
                    &base, &json,
                    "summary diverged: kernel={} d={} stop={} p={} pool={}",
                    kernel.name, d, stop_on_bug, parallelism, pool
                );
            }
        }
    }
}

#[test]
fn stop_on_bug_early_exit_matches_across_executors() {
    // A kernel that detects deterministically on iteration 1: the
    // stop_on_bug cutoff is exercised on every executor configuration,
    // and the parallel executor must not merge speculative iterations
    // past the cutoff.
    let kernel = goat::goker::by_name("moby28462").expect("kernel");
    let base = campaign_summary_json(kernel, 2, 7, 40, true, 1, true);
    for parallelism in [2usize, 8] {
        for pool in [true, false] {
            let json = campaign_summary_json(kernel, 2, 7, 40, true, parallelism, pool);
            assert_eq!(base, json, "early-exit diverged at p={parallelism} pool={pool}");
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint/resume crash safety: a campaign SIGKILLed mid-flight and
// resumed from its `GOAT_CHECKPOINT` sidecar must produce a report
// byte-identical to the uninterrupted campaign, no matter where the
// kill landed (before the first checkpoint, mid-write, or after the
// last iteration).
// ---------------------------------------------------------------------

// A budget big enough that the per-iteration checkpoint writes keep
// the child busy well past the kill point: the SIGKILL lands mid-flight
// (typically with a few hundred iterations persisted), not after the
// child already finished.
const KILL_KERNEL: &str = "etcd6708";
const KILL_ITERATIONS: usize = 2_000;
const KILL_SEED0: u64 = 9;

fn kill_resume_campaign(checkpoint: Option<&std::path::Path>) -> String {
    let kernel = goat::goker::by_name(KILL_KERNEL).expect("kernel");
    let mut cfg = GoatConfig::default()
        .with_delay_bound(1)
        .with_iterations(KILL_ITERATIONS)
        .with_seed0(KILL_SEED0)
        .keep_running()
        .with_checkpoint_every(1);
    if let Some(path) = checkpoint {
        cfg = cfg.with_checkpoint(path);
    }
    Goat::new(cfg)
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary serializes")
}

#[test]
fn sigkilled_campaign_resumes_byte_identically() {
    // Child mode: run the checkpointing campaign until the parent kills
    // us (or to completion, if the kill is late — both must resume
    // correctly).
    if std::env::var("GOAT_DETERMINISM_CHILD").is_ok() {
        let path = std::env::var("GOAT_DETERMINISM_CKPT").expect("checkpoint path");
        kill_resume_campaign(Some(std::path::Path::new(&path)));
        return;
    }

    let dir = std::env::temp_dir().join(format!("goat-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let ckpt = dir.join("campaign.json");
    let _ = std::fs::remove_file(&ckpt);

    // Reference: the identical campaign, uninterrupted, no checkpoint.
    let reference = kill_resume_campaign(None);

    let exe = std::env::current_exe().expect("test binary");
    let mut child = std::process::Command::new(exe)
        .args(["sigkilled_campaign_resumes_byte_identically", "--exact", "--nocapture"])
        .env("GOAT_DETERMINISM_CHILD", "1")
        .env("GOAT_DETERMINISM_CKPT", &ckpt)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child campaign");
    std::thread::sleep(std::time::Duration::from_millis(250));
    child.kill().expect("SIGKILL the campaign"); // SIGKILL on unix
    let _ = child.wait();

    // Resume from whatever the child managed to persist.
    let resumed = kill_resume_campaign(Some(&ckpt));
    assert_eq!(
        reference, resumed,
        "campaign resumed after SIGKILL must be byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Execution-hot-path equivalence: the spin-then-park handoff and the
// duplicate-schedule analysis memo are pure performance features — a
// campaign's machine-readable summary must be byte-identical with
// spinning disabled (`GOAT_SPIN=0` / park-only) and with memoization
// off, on, or in self-checking `verify` mode.
// ---------------------------------------------------------------------

use goat::core::MemoMode;

fn hot_path_summary_json(
    kernel: &'static goat::goker::BugKernel,
    memo: MemoMode,
    spin: Option<u32>,
) -> String {
    let mut cfg = GoatConfig::default()
        .with_delay_bound(2)
        .with_iterations(24)
        .with_seed0(3)
        .keep_running()
        .with_memo(memo);
    if let Some(s) = spin {
        cfg = cfg.with_spin(s);
    }
    Goat::new(cfg)
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary serializes")
}

#[test]
fn campaign_summaries_identical_across_memo_and_spin() {
    for name in ["moby28462", "etcd6708", "cockroach1462"] {
        let kernel = goat::goker::by_name(name).expect("kernel");
        let base = hot_path_summary_json(kernel, MemoMode::Off, None);
        for (memo, spin) in [
            (MemoMode::On, None),
            (MemoMode::Verify, None),
            (MemoMode::Off, Some(0)),
            (MemoMode::On, Some(0)),
            (MemoMode::On, Some(10_000)),
        ] {
            let json = hot_path_summary_json(kernel, memo, spin);
            assert_eq!(
                base, json,
                "{name}: summary diverged at memo={memo:?} spin={spin:?} — the hot path \
                 must be invisible to campaign reports"
            );
        }
    }
}

#[test]
fn memo_verify_mode_passes_across_kernels() {
    // GOAT_MEMO=verify re-analyzes every duplicate schedule and asserts
    // the stored products equal the fresh ones; surviving campaigns on
    // kernels with plenty of duplicate schedules is the memoization
    // soundness check. D=0 maximizes duplicates (no injected yields),
    // so these campaigns actually exercise the hit path.
    for name in ["moby28462", "etcd6708", "grpc1424"] {
        let kernel = goat::goker::by_name(name).expect("kernel");
        let cfg = GoatConfig::default()
            .with_iterations(30)
            .with_seed0(11)
            .keep_running()
            .with_memo(MemoMode::Verify);
        let r = Goat::new(cfg).test(Arc::new(KernelProgram(kernel)));
        assert_eq!(r.records.len(), 30, "{name}: verify campaign ran to budget");
    }
}

#[test]
fn traces_are_well_formed_across_the_suite() {
    for kernel in goat::goker::all_kernels() {
        for seed in [1u64, 99] {
            let r =
                Runtime::run(Config::new(seed).with_delay_bound(1), move || Program::main(kernel));
            if let Some(ect) = &r.ect {
                ect.well_formed().unwrap_or_else(|e| {
                    panic!("{} seed {seed}: malformed trace: {e}", kernel.name)
                });
            }
            goat::core::crosscheck(&r).unwrap_or_else(|e| {
                panic!("{} seed {seed}: trace/runtime disagree: {e}", kernel.name)
            });
        }
    }
}

// ---------------------------------------------------------------------
// Process-isolation equivalence: `GOAT_ISOLATE=proc` is a robustness
// feature, not a semantic one — the full Config travels in the Run
// frame, so a sandboxed worker must return bit-for-bit the result an
// in-process run produces, and campaign reports must not change.
// ---------------------------------------------------------------------

use goat::core::IsolateMode;

fn isolated_summary_json(
    kernel: &'static goat::goker::BugKernel,
    d: u32,
    seed0: u64,
    iterations: usize,
    stop_on_bug: bool,
    isolate: IsolateMode,
) -> String {
    let mut cfg = GoatConfig::default()
        .with_delay_bound(d)
        .with_iterations(iterations)
        .with_seed0(seed0)
        .with_isolate(isolate)
        .with_worker_cmd(env!("CARGO_BIN_EXE_goat"));
    if !stop_on_bug {
        cfg = cfg.keep_running();
    }
    Goat::new(cfg)
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary serializes")
}

#[test]
fn campaign_summaries_identical_with_process_isolation() {
    for (name, d, seed0, iterations, stop_on_bug) in [
        ("moby28462", 2u32, 7u64, 12usize, true),
        ("etcd6708", 1, 11, 12, false),
        ("grpc1424", 0, 3, 10, false),
    ] {
        let kernel = goat::goker::by_name(name).expect("kernel");
        let off =
            isolated_summary_json(kernel, d, seed0, iterations, stop_on_bug, IsolateMode::Off);
        let proc_ =
            isolated_summary_json(kernel, d, seed0, iterations, stop_on_bug, IsolateMode::Proc);
        assert_eq!(
            off, proc_,
            "{name}: campaign report must be byte-identical across isolation modes"
        );
    }
}

// ---------------------------------------------------------------------
// Checkpoint/resume under isolation: SIGKILLing the *orchestrator* of
// an isolated campaign mid-flight (workers and all) and resuming from
// its sidecar must still produce a byte-identical report.
// ---------------------------------------------------------------------

const ISO_KILL_ITERATIONS: usize = 400;

fn iso_kill_campaign(checkpoint: Option<&std::path::Path>) -> String {
    let kernel = goat::goker::by_name(KILL_KERNEL).expect("kernel");
    let mut cfg = GoatConfig::default()
        .with_delay_bound(1)
        .with_iterations(ISO_KILL_ITERATIONS)
        .with_seed0(KILL_SEED0)
        .keep_running()
        .with_checkpoint_every(1)
        .with_isolate(IsolateMode::Proc)
        .with_worker_cmd(env!("CARGO_BIN_EXE_goat"));
    if let Some(path) = checkpoint {
        cfg = cfg.with_checkpoint(path);
    }
    Goat::new(cfg)
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary serializes")
}

#[test]
fn sigkilled_isolated_campaign_resumes_byte_identically() {
    // Child mode: run the isolated checkpointing campaign until the
    // parent SIGKILLs us (taking our workers down too).
    if std::env::var("GOAT_DETERMINISM_ISO_CHILD").is_ok() {
        let path = std::env::var("GOAT_DETERMINISM_CKPT").expect("checkpoint path");
        iso_kill_campaign(Some(std::path::Path::new(&path)));
        return;
    }

    let dir = std::env::temp_dir().join(format!("goat-iso-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let ckpt = dir.join("campaign.json");
    let _ = std::fs::remove_file(&ckpt);

    // Reference: the identical isolated campaign, uninterrupted.
    let reference = iso_kill_campaign(None);

    let exe = std::env::current_exe().expect("test binary");
    let mut child = std::process::Command::new(exe)
        .args(["sigkilled_isolated_campaign_resumes_byte_identically", "--exact", "--nocapture"])
        .env("GOAT_DETERMINISM_ISO_CHILD", "1")
        .env("GOAT_DETERMINISM_CKPT", &ckpt)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child campaign");
    std::thread::sleep(std::time::Duration::from_millis(400));
    child.kill().expect("SIGKILL the campaign"); // SIGKILL on unix
    let _ = child.wait();

    // Resume from whatever the child persisted; the fingerprint covers
    // the isolation mode, so the sidecar is accepted only by a proc-mode
    // resume of the same campaign.
    let resumed = iso_kill_campaign(Some(&ckpt));
    assert_eq!(
        reference, resumed,
        "isolated campaign resumed after SIGKILL must be byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// IPC data-plane equivalence: the frame codec (`GOAT_IPC`), the shared-
// memory result ring (`GOAT_IPC_SHM`) and run batching (`GOAT_IPC_BATCH`)
// are transport optimizations — campaign reports must be byte-identical
// whichever of them carries the runs.
// ---------------------------------------------------------------------

use goat::core::IpcMode;

#[allow(clippy::too_many_arguments)]
fn ipc_summary_json(
    kernel: &'static goat::goker::BugKernel,
    d: u32,
    seed0: u64,
    iterations: usize,
    stop_on_bug: bool,
    ipc: IpcMode,
    shm: bool,
    batch: usize,
) -> String {
    let mut cfg = GoatConfig::default()
        .with_delay_bound(d)
        .with_iterations(iterations)
        .with_seed0(seed0)
        .with_isolate(IsolateMode::Proc)
        .with_worker_cmd(env!("CARGO_BIN_EXE_goat"))
        .with_ipc(ipc)
        .with_ipc_shm(shm)
        .with_ipc_batch(batch);
    if !stop_on_bug {
        cfg = cfg.keep_running();
    }
    Goat::new(cfg)
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary serializes")
}

#[test]
fn campaign_summaries_identical_across_ipc_modes() {
    for (name, d, seed0, iterations, stop_on_bug) in
        [("etcd6708", 1u32, 11u64, 12usize, false), ("moby28462", 2, 7, 12, true)]
    {
        let kernel = goat::goker::by_name(name).expect("kernel");
        let off =
            isolated_summary_json(kernel, d, seed0, iterations, stop_on_bug, IsolateMode::Off);
        for (leg, ipc, shm, batch) in [
            ("proc+json", IpcMode::Json, false, 1usize),
            ("proc+bin", IpcMode::Bin, false, 1),
            ("proc+bin+shm", IpcMode::Bin, true, 1),
            ("proc+bin+shm+batch4", IpcMode::Bin, true, 4),
        ] {
            let got = ipc_summary_json(kernel, d, seed0, iterations, stop_on_bug, ipc, shm, batch);
            assert_eq!(
                off, got,
                "{name}/{leg}: campaign report must be byte-identical across IPC modes"
            );
        }
    }
}

// A worker that violates the binary protocol (emits a garbage frame
// instead of a result) must be treated as broken infrastructure: the
// orchestrator retries, exhausts the budget into InfraFailure verdicts,
// and quarantines — it must never attribute the violation to the kernel.
#[test]
fn binary_garbage_frames_degrade_to_retried_infra_failures() {
    use goat::core::GoatVerdict;
    use goat::runtime::faultpoint;

    let kernel = goat::goker::by_name("grpc1424").expect("kernel");
    let _plan = faultpoint::scoped("worker:garbage-frame");
    let cfg = GoatConfig::default()
        .with_iterations(8)
        .with_seed0(3)
        .keep_running()
        .with_isolate(IsolateMode::Proc)
        .with_ipc(IpcMode::Bin)
        .with_worker_cmd(env!("CARGO_BIN_EXE_goat"))
        .with_max_retries(1)
        .with_quarantine_after(2);
    let result = Goat::new(cfg).test(Arc::new(KernelProgram(kernel)));

    assert!(
        result.quarantined.is_some(),
        "a worker that only ever speaks garbage must quarantine the kernel"
    );
    assert!(!result.records.is_empty(), "the failing iterations are on record");
    for rec in &result.records {
        assert!(
            matches!(rec.verdict, GoatVerdict::InfraFailure { .. }),
            "protocol violations must surface as infra failures, got {:?}",
            rec.verdict
        );
    }
    assert!(result.bug.is_none(), "a protocol violation is never evidence about the program");
}

// ---------------------------------------------------------------------
// Suite-orchestrator equivalence: `-target all -jobs N` multiplexes all
// kernels over one global work-stealing iteration queue, but the
// per-kernel summary lines render through a kernel-granularity reorder
// buffer — stdout must be byte-identical to the sequential suite at any
// jobs value, in both isolation modes, and a SIGKILLed suite must
// resume from its per-kernel sidecars plus suite manifest to the same
// bytes.
// ---------------------------------------------------------------------

/// The `goat` CLI with a scrubbed suite environment: tests control the
/// suite knobs via flags only.
fn goat_cmd() -> std::process::Command {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_goat"));
    cmd.env_remove("GOAT_JOBS")
        .env_remove("GOAT_SUITE_REALLOC")
        .env_remove("GOAT_ISOLATE")
        .env_remove("GOAT_CHECKPOINT")
        .env_remove("GOAT_PARALLELISM");
    cmd
}

fn suite_stdout(cmd: &mut std::process::Command) -> String {
    let out = cmd.output().expect("run goat suite");
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn suite_stdout_identical_across_jobs_and_isolation() {
    for isolate in ["off", "proc"] {
        let baseline = suite_stdout(
            goat_cmd()
                .args(["-target", "all", "-d", "1", "-freq", "2"])
                .env("GOAT_ISOLATE", isolate),
        );
        assert!(
            baseline.contains("/68 at D=1 within 2 iterations"),
            "suite footer missing ({isolate}): {baseline:?}"
        );
        for jobs in ["2", "4"] {
            let parallel = suite_stdout(
                goat_cmd()
                    .args(["-target", "all", "-d", "1", "-freq", "2", "-jobs", jobs])
                    .env("GOAT_ISOLATE", isolate),
            );
            assert_eq!(
                baseline, parallel,
                "suite stdout diverged at -jobs {jobs} (GOAT_ISOLATE={isolate})"
            );
        }
    }
}

#[test]
fn sigkilled_suite_resumes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("goat-suite-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let ckpt = dir.join("cp.json");
    let args = |with_ckpt: bool| {
        let mut v = vec![
            "-target".to_string(),
            "all".to_string(),
            "-d".to_string(),
            "1".to_string(),
            "-freq".to_string(),
            "120".to_string(),
            "-jobs".to_string(),
            "4".to_string(),
            "-realloc".to_string(),
        ];
        if with_ckpt {
            v.push("-checkpoint".to_string());
            v.push(ckpt.display().to_string());
        }
        v
    };

    // Reference: the identical suite, uninterrupted, no checkpoint.
    let reference = suite_stdout(goat_cmd().args(args(false)));

    let mut child = goat_cmd()
        .args(args(true))
        .env("GOAT_CHECKPOINT_EVERY", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn suite");
    std::thread::sleep(std::time::Duration::from_millis(300));
    child.kill().expect("SIGKILL the suite"); // SIGKILL on unix
    let _ = child.wait();

    // The suite manifest and at least the first kernel's sidecar are
    // derived from the base path (`cp.json` → `cp.<kernel>.json`).
    assert!(dir.join("cp.suite.json").exists(), "suite manifest missing after kill");
    let sidecars = std::fs::read_dir(&dir)
        .expect("read tmpdir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            n.starts_with("cp.") && n.ends_with(".json") && n != "cp.json" && n != "cp.suite.json"
        })
        .count();
    assert!(sidecars > 0, "no per-kernel sidecar was persisted before the kill");

    // Resume from whatever the suite persisted: finished kernels replay
    // from their sidecars, in-flight ones continue, and the final
    // stdout must match the uninterrupted run byte for byte.
    let resumed = suite_stdout(goat_cmd().args(args(true)).env("GOAT_CHECKPOINT_EVERY", "1"));
    assert_eq!(
        reference, resumed,
        "suite resumed after SIGKILL must be byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// Regression guard for stale per-checkout Init caching: a pooled worker
// Init'ed with one base config must be re-Init'ed (not silently reused)
// when a later campaign changes a base field that does not travel in the
// per-run Run delta. `max_steps` is such a field — a stale 200k-step
// Init would never report the tiny budget's hangs.
#[test]
fn pooled_workers_reinit_when_the_base_config_changes() {
    let kernel = goat::goker::by_name("etcd6708").expect("kernel");

    // Prime the pool with workers Init'ed at the default step budget.
    let prime = GoatConfig::default()
        .with_delay_bound(1)
        .with_iterations(6)
        .with_seed0(11)
        .keep_running()
        .with_isolate(IsolateMode::Proc)
        .with_ipc(IpcMode::Bin)
        .with_worker_cmd(env!("CARGO_BIN_EXE_goat"));
    let _ = Goat::new(prime).test(Arc::new(KernelProgram(kernel)));

    // Same pool geometry, different base config: an 8-step budget every
    // run exhausts. The checked-in worker is eligible for reuse, so only
    // an Init-hash mismatch stands between it and running with the stale
    // 200k budget.
    let tiny_budget_summary = |isolate: IsolateMode| {
        let mut cfg = GoatConfig::default()
            .with_delay_bound(1)
            .with_iterations(6)
            .with_seed0(11)
            .keep_running()
            .with_isolate(isolate)
            .with_ipc(IpcMode::Bin)
            .with_worker_cmd(env!("CARGO_BIN_EXE_goat"));
        cfg.max_steps = 8;
        Goat::new(cfg)
            .test(Arc::new(KernelProgram(kernel)))
            .to_json_summary()
            .expect("summary serializes")
    };

    let off = tiny_budget_summary(IsolateMode::Off);
    // The tiny budget must actually change behavior, or this test proves
    // nothing about Init invalidation.
    let default_budget_off = isolated_summary_json(kernel, 1, 11, 6, false, IsolateMode::Off);
    assert_ne!(off, default_budget_off, "an 8-step budget must bite on this kernel");

    let proc_ = tiny_budget_summary(IsolateMode::Proc);
    assert_eq!(
        off, proc_,
        "reused workers must refresh their cached Init when the base config changes"
    );
}
