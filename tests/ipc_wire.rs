//! Differential properties of the binary IPC data plane (`GOAT_IPC=bin`).
//!
//! The binary codec in `goat::core::wire` / `goat::trace::wire` must be a
//! drop-in replacement for the JSON path: anything the JSON wire can carry,
//! the binary wire must carry losslessly. These tests synthesize arbitrary
//! well-formed trace buffers and `RunResult`s covering every `RunOutcome`
//! variant (including `Crashed { CrashForensics }` and `TimedOut`) and
//! assert the binary round-trip is indistinguishable from the original
//! under the JSON serializer — the exact equivalence the byte-identity
//! guarantee of process isolation rests on.

use goat::core::wire::{self, WireFrame};
use goat::model::{Cu, CuKind};
use goat::runtime::{
    AliveGoroutine, CrashForensics, Decision, ReplayLog, RunOutcome, RunResult, SchedCounters,
    TimeoutPhase,
};
use goat::trace::wire::{decode_events, encode_events, Reader};
use goat::trace::{BlockReason, Ect, Event, EventKind, Gid, RId, SelCaseFlavor, VTime};
use proptest::prelude::*;

/// One raw draw the event builder turns into a concrete event: the kind
/// selector plus three free knobs the payload fields are carved from.
type EvSpec = (u8, u64, u64, bool);

fn ev_spec() -> impl Strategy<Value = EvSpec> {
    (0u8..29, any::<u64>(), any::<u64>(), any::<bool>())
}

const FILES: [&str; 3] = ["app/worker.go", "pkg/queue/queue.go", "internal/mu.go"];
const REASONS: [BlockReason; 7] = [
    BlockReason::Send,
    BlockReason::Recv,
    BlockReason::Select,
    BlockReason::Sync,
    BlockReason::Cond,
    BlockReason::WaitGroup,
    BlockReason::Sleep,
];
const FLAVORS: [SelCaseFlavor; 3] =
    [SelCaseFlavor::Send, SelCaseFlavor::Recv, SelCaseFlavor::Default];
const CU_KINDS: [CuKind; 4] = [CuKind::Send, CuKind::Recv, CuKind::Lock, CuKind::Go];

fn make_cu(a: u64, b: u64) -> Cu {
    Cu::new(
        FILES[(a % FILES.len() as u64) as usize],
        (b % 4096) as u32 + 1,
        CU_KINDS[(b % CU_KINDS.len() as u64) as usize],
    )
}

/// Build a dense-seq, time-monotone trace from raw spec draws. The kinds
/// deliberately sweep the whole `EventKind` vocabulary — interned names,
/// Cu-bearing concurrency sites, select case vectors, signed waitgroup
/// deltas, and `usize::MAX` select-default sentinels all appear.
fn build_events(specs: &[EvSpec]) -> Vec<Event> {
    let mut ts = 0u64;
    specs
        .iter()
        .enumerate()
        .map(|(i, &(pick, a, b, flag))| {
            ts += a % 11;
            let rid = RId(a % 9);
            let kind = match pick {
                0 => EventKind::GoCreate {
                    // Unique per event so traces stay double-create free.
                    new_g: Gid(1000 + i as u64),
                    name: format!("worker-{}", a % 3).into(),
                    internal: flag,
                },
                1 => EventKind::GoStart,
                2 => EventKind::GoEnd,
                3 => EventKind::GoStop,
                4 => EventKind::GoSched { trace_stop: flag },
                5 => EventKind::GoPreempt,
                6 => EventKind::GoSleep,
                7 => EventKind::GoBlock {
                    reason: REASONS[(a % REASONS.len() as u64) as usize],
                    holder_cu: flag.then(|| make_cu(b, a)),
                    holder: (b % 2 == 0).then_some(Gid(b % 5)),
                },
                8 => EventKind::GoUnblock { g: Gid(b % 6) },
                9 => EventKind::GoWaiting,
                10 => EventKind::Gomaxprocs { n: (a % 16) as u32 + 1 },
                11 => EventKind::HeapAlloc { bytes: b },
                12 => EventKind::UserLog { msg: format!("log {a} \u{1f} {b}") },
                13 => EventKind::TimerFire { timer: rid },
                14 => EventKind::ChMake { ch: rid, cap: (b % 5) as usize },
                15 => EventKind::ChSend { ch: rid },
                16 => EventKind::ChRecv { ch: rid, closed: flag },
                17 => EventKind::ChClose { ch: rid },
                18 => EventKind::SelectBegin {
                    cases: (0..(b % 4))
                        .map(|j| {
                            let fl = FLAVORS[((b + j) % 3) as usize];
                            let ch = (fl != SelCaseFlavor::Default).then(|| RId((a + j) % 9));
                            (fl, ch)
                        })
                        .collect(),
                    has_default: flag,
                },
                19 => {
                    let fl = FLAVORS[(a % 3) as usize];
                    EventKind::SelectEnd {
                        chosen: if fl == SelCaseFlavor::Default {
                            usize::MAX
                        } else {
                            (b % 4) as usize
                        },
                        flavor: fl,
                        ch: (fl != SelCaseFlavor::Default).then_some(rid),
                    }
                }
                20 => EventKind::MuLock { mu: rid },
                21 => EventKind::MuUnlock { mu: rid },
                22 => EventKind::RwRLock { mu: rid },
                23 => EventKind::RwRUnlock { mu: rid },
                24 => {
                    EventKind::WgAdd { wg: rid, delta: (b % 5) as i64 - 2, count: (a % 7) as i64 }
                }
                25 => EventKind::WgDone { wg: rid, count: (a % 7) as i64 },
                26 => EventKind::WgWait { wg: rid },
                27 => EventKind::CondWait { cv: rid },
                _ => {
                    if flag {
                        EventKind::CondSignal { cv: rid }
                    } else {
                        EventKind::CondBroadcast { cv: rid }
                    }
                }
            };
            let concurrency = matches!(
                kind,
                EventKind::ChSend { .. }
                    | EventKind::ChRecv { .. }
                    | EventKind::MuLock { .. }
                    | EventKind::WgAdd { .. }
                    | EventKind::SelectBegin { .. }
            );
            Event {
                seq: i as u64,
                ts: VTime(ts),
                g: Gid(b % 4),
                kind,
                cu: (concurrency && flag).then(|| make_cu(a, b)),
            }
        })
        .collect()
}

/// Raw draws for a full `RunOutcome`, covering all seven variants.
type OutcomeSpec = (u8, u64, u64, bool);

fn build_outcome(&(pick, a, b, flag): &OutcomeSpec) -> RunOutcome {
    match pick % 7 {
        0 => RunOutcome::Completed,
        1 => RunOutcome::GlobalDeadlock { blocked: (0..(a % 5)).map(|i| Gid(b % 7 + i)).collect() },
        2 => RunOutcome::Panicked { g: Gid(a % 9), msg: format!("send on closed channel #{b}") },
        3 => RunOutcome::StepLimit,
        4 => RunOutcome::TimedOut {
            phase: if flag { TimeoutPhase::Wedged } else { TimeoutPhase::Cooperative },
            elapsed_ms: a,
        },
        5 => RunOutcome::InfraFailure { reason: format!("checkout failed: os error {}", b % 255) },
        _ => RunOutcome::Crashed {
            forensics: CrashForensics {
                signal: flag.then_some((a % 32) as i32),
                exit_code: (!flag).then(|| (b % 256) as i32 - 128),
                stderr_tail: format!("thread 'main' panicked at step {a}\nnote: run {b}"),
                last_ack_iter: (b % 3 == 0).then_some(a),
                summary: format!("killed by signal {} (SIGABRT)", a % 32),
            },
        },
    }
}

/// Assemble a `RunResult` exercising every field the wire must carry.
fn build_result(outcome: RunOutcome, events: Vec<Event>, a: u64, b: u64, flag: bool) -> RunResult {
    let ect: Option<Ect> = (!events.is_empty()).then(|| events.into_iter().collect());
    RunResult {
        outcome,
        ect,
        steps: a,
        vclock: VTime(b),
        goroutines: a % 64,
        yields_injected: (b % 1000) as u32,
        priority_changes: (a % 16) as u32,
        alive_at_end: (0..(b % 4))
            .map(|i| AliveGoroutine {
                g: Gid(10 + i),
                name: format!("g{i}"),
                state: if i % 2 == 0 { "blocked: recv".into() } else { "runnable".into() },
                internal: flag && i == 0,
            })
            .collect(),
        schedule: ReplayLog {
            decisions: (0..(a % 6))
                .map(|i| match i % 3 {
                    0 => Decision::Pick(Gid(b % 5 + i)),
                    1 => Decision::SelectChoice((b % 4) as usize),
                    _ => Decision::YieldAt(flag),
                })
                .collect(),
        },
        replay_diverged: flag,
        sched: SchedCounters {
            picks: a,
            random_picks: a % 97,
            blocks: b % 1024,
            unblocks: b % 1023,
            yields_preempt: a % 33,
            yields_gosched: b % 17,
            timer_fires: a % 5,
            select_choices: b % 11,
        },
        fingerprint: a ^ b.rotate_left(17),
        panic_detail: flag.then(|| format!("panicked at 'boom {a}', src/lib.rs:{}", b % 500)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Event-level codec: varint-delta encode → decode is the identity on
    /// arbitrary dense trace buffers, and consumes its payload exactly.
    #[test]
    fn trace_events_roundtrip_bitwise(specs in prop::collection::vec(ev_spec(), 0..60)) {
        let events = build_events(&specs);
        let mut buf = Vec::new();
        encode_events(&events, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_events(&mut r).expect("decode well-formed events");
        prop_assert_eq!(&back, &events);
        prop_assert!(r.is_empty(), "codec left {} unread bytes", r.remaining());
    }

    /// Result-level differential: the binary round-trip of a `RunResult`
    /// is indistinguishable from the original under the JSON serializer —
    /// the JSON path and the binary path carry identical information.
    #[test]
    fn run_results_agree_with_the_json_path(
        specs in prop::collection::vec(ev_spec(), 0..40),
        outcome in (any::<u8>(), any::<u64>(), any::<u64>(), any::<bool>()),
        a in any::<u64>(),
        b in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let result = build_result(build_outcome(&outcome), build_events(&specs), a, b, flag);
        let json_before = serde_json::to_string(&result).expect("serialize original");

        let mut buf = Vec::new();
        wire::encode_result(&result, &mut buf);
        let mut r = Reader::new(&buf);
        let back = wire::decode_result(&mut r).expect("decode well-formed result");
        prop_assert!(r.is_empty(), "codec left {} unread bytes", r.remaining());

        let json_after = serde_json::to_string(&back).expect("serialize round-trip");
        prop_assert_eq!(json_after, json_before);
    }

    /// Frame-level differential: a `Result` frame survives the full
    /// framed encode → length-prefix strip → decode path intact.
    #[test]
    fn result_frames_roundtrip_end_to_end(
        specs in prop::collection::vec(ev_spec(), 0..20),
        outcome in (any::<u8>(), any::<u64>(), any::<u64>(), any::<bool>()),
        iter in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let result = build_result(build_outcome(&outcome), build_events(&specs), a, b, false);
        let json_before = serde_json::to_string(&result).expect("serialize original");

        let frame = WireFrame::Result { iter, result: Box::new(result) };
        let mut framed = Vec::new();
        wire::encode_frame_into(&frame, &mut framed).expect("encode frame");
        // `[u32 LE len][payload]`: the length prefix must match exactly.
        let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, framed.len() - 4);

        match wire::decode_frame(&framed[4..]).expect("decode frame") {
            WireFrame::Result { iter: got_iter, result: got } => {
                prop_assert_eq!(got_iter, iter);
                let json_after = serde_json::to_string(&*got).expect("serialize round-trip");
                prop_assert_eq!(json_after, json_before);
            }
            other => prop_assert!(false, "decoded wrong frame: {other:?}"),
        }
    }
}

/// Truncating a valid binary result payload at any byte must fail with an
/// error, never panic and never decode to a different value — the decoder
/// treats every prefix as corruption.
#[test]
fn truncated_result_payloads_error_out_cleanly() {
    let specs: Vec<EvSpec> =
        (0..24u8).map(|i| (i % 29, i as u64 * 7 + 3, i as u64 * 13 + 1, i % 2 == 0)).collect();
    let result = build_result(build_outcome(&(6, 11, 42, true)), build_events(&specs), 5, 9, true);
    let mut buf = Vec::new();
    wire::encode_result(&result, &mut buf);
    let json_full = serde_json::to_string(&result).expect("serialize");
    for cut in 0..buf.len() {
        let mut r = Reader::new(&buf[..cut]);
        if let Ok(back) = wire::decode_result(&mut r) {
            // A prefix may only decode successfully if trailing bytes were
            // pure padding — it must still be the same value.
            assert_eq!(serde_json::to_string(&back).expect("serialize"), json_full);
        }
    }
}
