//! End-to-end test of the opt-in JSONL telemetry stream: run a real
//! campaign with `GOAT_TELEMETRY` pointed at a file, then parse the
//! stream line by line and check every event kind the pipeline is
//! supposed to emit actually showed up.
//!
//! Lives in its own integration-test binary (= its own process) because
//! the telemetry enable flag and the sink resolve the environment once,
//! lazily, on first use — the variable must be set before any other
//! test touches the metrics crate.

use goat::core::{Goat, GoatConfig, Program};
use goat::goker::{by_name, BugKernel};
use std::collections::BTreeMap;
use std::sync::Arc;

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

/// Just enough of an event to classify it; extra fields are ignored by
/// the derive, so this parses every kind the stream carries.
#[derive(serde::Deserialize)]
struct EventProbe {
    kind: String,
}

#[test]
fn campaign_streams_parseable_jsonl_with_all_event_kinds() {
    let path = std::env::temp_dir().join(format!("goat_telemetry_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(goat::metrics::TELEMETRY_ENV, &path);

    let kernel = by_name("etcd6708").expect("kernel in suite");
    let goat = Goat::new(
        GoatConfig::default().with_iterations(20).with_seed0(11).with_delay_bound(2).keep_running(),
    );
    let result = goat.test(Arc::new(KernelProgram(kernel)));
    assert_eq!(result.records.len(), 20, "keep_running must run the full budget");

    // The in-report surface must be populated when telemetry is on.
    let telemetry = result.telemetry.as_ref().expect("telemetry embedded in campaign result");
    assert_eq!(telemetry.iterations, 20);
    assert!(telemetry.sched.picks > 0, "{:?}", telemetry.sched);

    // Stream must exist, parse line-by-line, and cover every kind.
    let raw = std::fs::read_to_string(&path).expect("JSONL stream written");
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    for (i, line) in raw.lines().enumerate() {
        let event: EventProbe = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}\n{line}", i + 1));
        *kinds.entry(event.kind).or_default() += 1;
    }
    for kind in ["scheduler", "pool", "coverage", "campaign"] {
        assert!(kinds.contains_key(kind), "no `{kind}` events in stream, saw: {kinds:?}");
    }
    // One scheduler event and one coverage event per iteration, one
    // campaign event for the whole run.
    assert!(kinds["scheduler"] >= 20, "expected ≥20 scheduler events: {kinds:?}");
    assert!(kinds["coverage"] >= 20, "expected ≥20 coverage events: {kinds:?}");
    assert_eq!(kinds["campaign"], 1, "{kinds:?}");

    let _ = std::fs::remove_file(&path);
}
