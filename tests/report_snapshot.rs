//! Golden-snapshot guard over the campaign report JSON.
//!
//! Two fixed (kernel, seed) campaigns have their `CampaignSummary` JSON
//! committed byte-for-byte under `tests/snapshots/`. Any schema change —
//! a renamed field, a reordered field, a new always-present field —
//! fails this test and must be made deliberately by re-blessing:
//!
//! ```text
//! GOAT_BLESS=1 cargo test --test report_snapshot
//! ```
//!
//! The snapshots were generated *before* the telemetry layer landed, so
//! they also prove that a telemetry-off run serializes byte-identically
//! to the pre-telemetry output (the optional `telemetry` field must not
//! appear at all when disabled).

use goat::core::{Goat, GoatConfig, Program};
use goat::goker::{by_name, BugKernel};
use goat::runtime::{faultpoint, StrategyKind};
use std::path::PathBuf;
use std::sync::Arc;

/// A fault plan that can never fire (no pinned campaign uses this
/// seed): both tests hold a scoped-fault guard so the panic injection
/// below can never leak into the healthy campaigns running in a
/// parallel test thread.
const INERT: &str = "iter:panic:seed=999999999";

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

/// The pinned campaigns: name, seed0, delay bound. 20 iterations each,
/// keep-running, sequential — small, fast, and fully deterministic.
const CASES: [(&str, u64, u32); 2] = [("etcd6708", 11, 2), ("moby28462", 17, 2)];

fn snapshot_path(kernel: &str, seed0: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{kernel}_s{seed0}.json"))
}

/// The pinned default-mode configuration. The exploration knobs are set
/// explicitly (native strategy, guided off, no saturation window) so the
/// goldens stay byte-identical even when the surrounding environment
/// sets `GOAT_STRATEGY`/`GOAT_GUIDED` — as the PCT CI matrix leg does —
/// while still proving that those defaults serialize exactly like the
/// pre-exploration schema (no `saturated`/`guided` fields at all).
fn pinned_config(seed0: u64, delay_bound: u32) -> GoatConfig {
    GoatConfig::default()
        .with_iterations(20)
        .with_seed0(seed0)
        .with_delay_bound(delay_bound)
        .with_parallelism(1)
        .with_strategy(StrategyKind::Native)
        .with_guided(false)
        .with_saturation_window(None)
        .keep_running()
}

fn render(kernel: &'static BugKernel, seed0: u64, delay_bound: u32) -> String {
    let goat = Goat::new(pinned_config(seed0, delay_bound));
    let result = goat.test(Arc::new(KernelProgram(kernel)));
    let mut json = result.to_json_summary().expect("serializable");
    json.push('\n');
    json
}

fn check_or_bless(got: &str, path: &PathBuf, label: &str) {
    if std::env::var("GOAT_BLESS").is_ok() {
        std::fs::write(path, got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "campaign report JSON for {label} drifted from its committed snapshot; if the \
         schema change is deliberate, re-bless with \
         GOAT_BLESS=1 cargo test --test report_snapshot"
    );
}

#[test]
fn campaign_report_json_matches_committed_snapshots() {
    let _g = faultpoint::scoped(INERT);
    for (name, seed0, d) in CASES {
        let kernel = by_name(name).expect("pinned kernel exists");
        let got = render(kernel, seed0, d);
        check_or_bless(&got, &snapshot_path(name, seed0), name);
    }
}

/// A campaign whose *first* iteration crashes (an injected kernel panic
/// at seed 11) while the remaining 19 run normally: pins the report
/// schema of a mid-campaign crash — `"bug": "CRASH"` at iteration 1,
/// a full-length iteration series, and no supervision fields (a crash
/// is a recorded verdict, not a quarantine).
#[test]
fn crashed_iteration_campaign_matches_committed_snapshot() {
    let _g = faultpoint::scoped("iter:panic:seed=11");
    let (name, seed0, d) = CASES[0];
    let kernel = by_name(name).expect("pinned kernel exists");
    let got = render(kernel, seed0, d);
    assert!(got.contains("\"bug\": \"CRASH\""), "{got}");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}_s{seed0}_crash.json"));
    check_or_bless(&got, &path, "crashed-iteration campaign");
}

/// A guided campaign's summary, pinned byte-for-byte: the bandit's arm
/// selections, the per-arm `guided` block and the iteration series are
/// all deterministic functions of the seed, so the whole JSON is a
/// stable golden. Drift here means the guided selection (or its
/// serialization) changed — which breaks same-seed reproducibility of
/// guided campaigns and must be a deliberate re-bless.
#[test]
fn guided_campaign_report_matches_committed_snapshot() {
    let _g = faultpoint::scoped(INERT);
    let (name, seed0, d) = CASES[0];
    let kernel = by_name(name).expect("pinned kernel exists");
    let goat = Goat::new(pinned_config(seed0, d).with_guided(true));
    let result = goat.test(Arc::new(KernelProgram(kernel)));
    let mut got = result.to_json_summary().expect("serializable");
    got.push('\n');
    assert!(got.contains("\"guided\""), "guided block missing from summary: {got}");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}_s{seed0}_guided.json"));
    check_or_bless(&got, &path, "guided campaign");
}
