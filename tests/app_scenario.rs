//! Application-scale scenario: a miniature container-manager service —
//! the kind of program the paper's introduction motivates — built on the
//! runtime and validated with GoAT across many schedules, policies and
//! delay bounds.
//!
//! The service composes a bounded worker pool, a token-bucket rate
//! limiter, a health-monitor loop (select + default, the listing-1
//! idiom, *correctly* synchronized here), context-based shutdown and a
//! stats registry behind an RWMutex. Correctness claims checked:
//!
//! * the service processes every request exactly once;
//! * it shuts down cleanly under every explored schedule (no leaks);
//! * GoAT's coverage metric reaches a healthy level over a campaign.

use goat::core::{FnProgram, Goat, GoatConfig};
use goat::runtime::context::Context;
use goat::runtime::{
    go_named, time, Chan, Config, Mutex, Runtime, RwLock, SchedPolicy, Select, WaitGroup,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: usize = 24;
const WORKERS: usize = 4;

fn container_manager(processed_out: Arc<AtomicUsize>) {
    let (ctx, shutdown) = Context::with_cancel();
    let requests: Chan<u64> = Chan::new(8);
    let results: Chan<u64> = Chan::new(REQUESTS);
    let rate_tokens: Chan<()> = Chan::new(2); // token-bucket: 2 in flight
    let stats = RwLock::new();
    let stats_count = Mutex::new();
    let wg = WaitGroup::new();

    // Worker pool: acquire a rate token, "start the container", report.
    for w in 0..WORKERS {
        wg.add(1);
        let requests = requests.clone();
        let results = results.clone();
        let rate = rate_tokens.clone();
        let stats = stats.clone();
        let stats_count = stats_count.clone();
        let wg = wg.clone();
        go_named(&format!("worker{w}"), move || {
            for req in requests.range() {
                rate.send(()); // acquire a token (blocks at the limit)
                               // container start latency
                time::sleep(Duration::from_millis(1));
                stats.rlock(); // read config snapshot
                stats.runlock();
                stats_count.lock(); // bump counters
                stats_count.unlock();
                results.send(req * 2);
                let _ = rate.recv(); // release the token
            }
            wg.done();
        });
    }

    // Health monitor: poll container health until shutdown (correct
    // version of the moby28462 monitor: the status channel is buffered
    // and checked with the lock *released*).
    {
        let ctx = ctx.clone();
        let stats = stats.clone();
        go_named("healthMonitor", move || loop {
            let stopped = Select::new().recv(ctx.done(), |_| true).default(|| false).run();
            if stopped {
                return;
            }
            stats.rlock();
            stats.runlock();
            time::sleep(Duration::from_millis(2));
        });
    }

    // Producer: submit all requests then close the queue.
    {
        let requests = requests.clone();
        go_named("apiServer", move || {
            for r in 0..REQUESTS as u64 {
                requests.send(r);
            }
            requests.close();
        });
    }

    // Collector: drain exactly REQUESTS results.
    let mut sum = 0u64;
    for _ in 0..REQUESTS {
        sum += results.recv().expect("result");
        processed_out.fetch_add(1, Ordering::SeqCst);
    }
    assert_eq!(sum, (0..REQUESTS as u64).map(|r| r * 2).sum::<u64>());
    wg.wait(); // all workers drained the closed queue
    shutdown.cancel(); // stop the health monitor
    time::sleep(Duration::from_millis(5)); // let it observe the cancel
}

#[test]
fn service_is_correct_across_schedules_and_policies() {
    for seed in 0..12u64 {
        for (label, cfg) in [
            ("native", Config::new(seed)),
            ("d3", Config::new(seed).with_delay_bound(3)),
            ("random", Config::new(seed).with_policy(SchedPolicy::UniformRandom)),
        ] {
            let processed = Arc::new(AtomicUsize::new(0));
            let p = Arc::clone(&processed);
            let r = Runtime::run(cfg, move || container_manager(p));
            assert!(r.clean(), "{label} seed {seed}: {:?} alive={:?}", r.outcome, r.alive_at_end);
            assert_eq!(processed.load(Ordering::SeqCst), REQUESTS, "{label} seed {seed}");
            goat::core::crosscheck(&r).unwrap();
            let ect = r.ect.expect("traced");
            ect.well_formed().unwrap();
        }
    }
}

#[test]
fn goat_campaign_reports_healthy_coverage_and_no_bug() {
    let program = Arc::new(FnProgram::new("container-manager", || {
        container_manager(Arc::new(AtomicUsize::new(0)));
    }));
    let goat =
        Goat::new(GoatConfig::default().with_iterations(15).with_delay_bound(2).keep_running());
    let result = goat.test(program);
    assert!(!result.detected(), "correct service flagged: {:?}", result.bug);
    assert!(
        result.coverage_percent() > 50.0,
        "campaign should exercise most requirements: {:.1}%",
        result.coverage_percent()
    );
    // The global tree collapses the four loop-spawned workers into one
    // equivalence node: main + {worker, monitor, api} + consumers.
    assert!(result.global_tree.len() >= 4, "{}", result.global_tree.render());
    // Trace statistics on a fresh run of the same service.
    let run = Runtime::run(Config::new(5), || {
        container_manager(Arc::new(AtomicUsize::new(0)));
    });
    let stats = goat::trace::TraceStats::of(run.ect.as_ref().expect("traced"));
    assert!(stats.categories.total() > 100);
    assert!(stats.unfinished().is_empty(), "{stats}");
    assert!(stats.most_blocked().is_some());
}
