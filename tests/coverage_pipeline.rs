//! Coverage-metric invariants over the whole benchmark: percentages stay
//! in range, accumulation is monotone in covered count, every covered
//! requirement exists in the universe, and the global goroutine tree's
//! equivalence keeps node counts stable across runs.

use goat::core::{extract_coverage, GlobalGTree, Program};
use goat::model::RequirementUniverse;
use goat::runtime::{Config, Runtime};
use goat::trace::GTree;

#[test]
fn coverage_invariants_hold_for_every_kernel() {
    for kernel in goat::goker::all_kernels() {
        let mut universe = RequirementUniverse::new();
        let mut covered = goat::model::CoverageSet::new();
        let mut global_tree = GlobalGTree::new();
        let mut last_covered_len = 0usize;
        let mut tree_len_after_first = None;

        for seed in 0..6u64 {
            let r =
                Runtime::run(Config::new(seed).with_delay_bound(1), move || Program::main(kernel));
            let Some(ect) = &r.ect else { continue };
            let cov = extract_coverage(ect, &mut universe);

            // Every covered requirement must exist in the universe.
            for key in cov.covered.iter() {
                assert!(
                    universe.contains(&key),
                    "{}: covered requirement missing from universe: {key:?}",
                    kernel.name
                );
            }
            covered.merge(&cov.covered);
            assert!(covered.len() >= last_covered_len, "{}: covered count shrank", kernel.name);
            last_covered_len = covered.len();

            let pct = covered.percent(&universe);
            assert!((0.0..=100.0).contains(&pct), "{}: pct {pct}", kernel.name);

            global_tree.merge_run(&GTree::from_ect(ect), &cov);
            match tree_len_after_first {
                None => tree_len_after_first = Some(global_tree.len()),
                Some(n) => {
                    // Equivalence may discover new nodes on new schedules
                    // but never below the first run's count.
                    assert!(global_tree.len() >= n, "{}: global tree shrank", kernel.name);
                }
            }
        }
        assert!(!universe.is_empty(), "{}: no requirements discovered", kernel.name);
        assert!(!covered.is_empty(), "{}: nothing covered", kernel.name);
    }
}

#[test]
fn coverage_grows_with_perturbation_on_the_study_kernels() {
    // The fig. 6 kernels must show coverage movement across schedules —
    // a flat curve would make the coverage study vacuous.
    for name in ["etcd7443", "kubernetes11298"] {
        let kernel = goat::goker::by_name(name).expect("study kernel");
        let mut universe = RequirementUniverse::new();
        let mut covered = goat::model::CoverageSet::new();
        let mut curve = Vec::new();
        for seed in 0..30u64 {
            let r =
                Runtime::run(Config::new(seed).with_delay_bound(2), move || Program::main(kernel));
            if let Some(ect) = &r.ect {
                let cov = extract_coverage(ect, &mut universe);
                covered.merge(&cov.covered);
            }
            curve.push(covered.percent(&universe));
        }
        let first = curve.first().copied().unwrap();
        let last = curve.last().copied().unwrap();
        assert!(
            last > first,
            "{name}: coverage never grew over 30 perturbed runs ({first} → {last})"
        );
        assert!(last < 100.0, "{name}: trivially saturated — requirements too weak");
    }
}

#[test]
fn select_case_requirements_materialise_at_runtime() {
    let kernel = goat::goker::by_name("moby28462").expect("kernel");
    let mut universe = RequirementUniverse::new();
    let r = Runtime::run(Config::new(1), move || Program::main(kernel));
    let _ = extract_coverage(r.ect.as_ref().unwrap(), &mut universe);
    let case_reqs =
        universe.iter().filter(|k| matches!(k.target, goat::model::ReqTarget::Case { .. })).count();
    assert!(case_reqs >= 3, "select cases (incl. default) must appear: {case_reqs}");
}
