//! # GoAT — Go Analysis and Testing, reproduced in Rust
//!
//! Umbrella crate re-exporting the GoAT reproduction workspace:
//!
//! * [`runtime`] — deterministic Go-style concurrency runtime (goroutines,
//!   channels, select, sync primitives, virtual time, yield perturbation)
//! * [`trace`] — execution concurrency traces (ECT) and goroutine trees
//! * [`model`] — static CU model and coverage requirements
//! * [`detectors`] — baseline dynamic detectors (builtin, LockDL, goleak)
//! * [`core`] — the GoAT tool proper: test runner, deadlock detection,
//!   coverage measurement, reports
//! * [`goker`] — the 68-kernel GoKer-style blocking-bug benchmark
//! * [`metrics`] — campaign telemetry: metrics registry and JSONL export
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use goat_core as core;
pub use goat_detectors as detectors;
pub use goat_goker as goker;
pub use goat_metrics as metrics;
pub use goat_model as model;
pub use goat_runtime as runtime;
pub use goat_trace as trace;
