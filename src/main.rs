//! `goat` — the command-line front end, mirroring the original tool's
//! workflow (paper appendix, listing 3):
//!
//! ```text
//! Usage of goat:
//!   -target <name>   benchmark kernel to test ('list' enumerates, 'all' sweeps)
//!   -d <int>         number of delays (delay bound D, default 0)
//!   -freq <int>      frequency of test executions (default 100)
//!   -cov             include the coverage report in the evaluation
//!   -seed <int>      base seed (default 1)
//! ```
//!
//! Example: `goat -target moby28462 -d 2 -freq 200 -cov`

use goat::core::{bug_report, Goat, GoatConfig, Program};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    target: String,
    d: u32,
    freq: usize,
    cov: bool,
    seed: u64,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli { target: String::new(), d: 0, freq: 100, cov: false, seed: 1 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "-target" | "--target" => cli.target = take("-target")?,
            "-d" | "--d" => cli.d = take("-d")?.parse().map_err(|e| format!("-d: {e}"))?,
            "-freq" | "--freq" => {
                cli.freq = take("-freq")?.parse().map_err(|e| format!("-freq: {e}"))?
            }
            "-seed" | "--seed" => {
                cli.seed = take("-seed")?.parse().map_err(|e| format!("-seed: {e}"))?
            }
            "-cov" | "--cov" => cli.cov = true,
            "-h" | "--help" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cli.target.is_empty() {
        return Err("missing -target (use '-target list' to enumerate kernels)".into());
    }
    Ok(cli)
}

fn print_help() {
    println!(
        "goat — automated concurrency analysis and debugging (GoAT reproduction)\n\n\
         usage: goat -target <kernel> [-d <int>] [-freq <int>] [-cov] [-seed <int>]\n\n\
         \x20 -target <name>  benchmark kernel to test ('list' enumerates all 68)\n\
         \x20 -d <int>        delay bound D: max injected yields per execution (default 0)\n\
         \x20 -freq <int>     maximum testing iterations (default 100)\n\
         \x20 -cov            print the coverage report after the campaign\n\
         \x20 -seed <int>     base seed (default 1)"
    );
}

struct KernelProgram(&'static goat::goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("goat: {e}\n");
            print_help();
            return ExitCode::from(2);
        }
    };

    if cli.target == "list" {
        println!("{:<18} {:<11} {:<14} description", "name", "project", "cause");
        for k in goat::goker::all_kernels() {
            println!(
                "{:<18} {:<11} {:<14} {}",
                k.name,
                k.project.to_string(),
                k.cause.to_string(),
                k.description
            );
        }
        return ExitCode::SUCCESS;
    }

    if cli.target == "all" {
        // The paper's `-eval_conf … -freq` whole-benchmark run.
        let mut detected = 0usize;
        for kernel in goat::goker::all_kernels() {
            let goat = Goat::new(
                GoatConfig::default()
                    .with_delay_bound(cli.d)
                    .with_iterations(cli.freq)
                    .with_seed0(cli.seed),
            );
            let result = goat.test(Arc::new(KernelProgram(kernel)));
            match result.first_detection {
                Some(iter) => {
                    detected += 1;
                    println!(
                        "{:<18} {:<10} (iteration {iter}, coverage {:.1}%)",
                        kernel.name,
                        result.bug.as_ref().map(|b| b.to_string()).unwrap_or_default(),
                        result.coverage_percent()
                    );
                }
                None => println!(
                    "{:<18} X          ({} iterations, coverage {:.1}%)",
                    kernel.name,
                    result.records.len(),
                    result.coverage_percent()
                ),
            }
        }
        println!(
            "
detected {detected}/68 at D={} within {} iterations",
            cli.d, cli.freq
        );
        return if detected == 68 { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let Some(kernel) = goat::goker::by_name(&cli.target) else {
        eprintln!("goat: unknown kernel '{}'; try -target list or -target all", cli.target);
        return ExitCode::from(2);
    };

    println!(
        "testing {} (D={}, freq={}, seed0={}) — {}",
        kernel.name, cli.d, cli.freq, cli.seed, kernel.description
    );
    let goat = Goat::new(
        GoatConfig::default()
            .with_delay_bound(cli.d)
            .with_iterations(cli.freq)
            .with_seed0(cli.seed),
    );
    let result = goat.test(Arc::new(KernelProgram(kernel)));

    match (&result.bug, &result.bug_ect) {
        (Some(verdict), Some(ect)) => {
            println!(
                "\nbug detected on iteration {} ({} yields in the buggy run)\n",
                result.first_detection.expect("detected"),
                result.records.last().map(|r| r.yields).unwrap_or(0),
            );
            println!("{}", bug_report(kernel.name, verdict, ect));
        }
        _ => println!(
            "\nno bug detected in {} iterations (final coverage {:.1}%)",
            result.records.len(),
            result.coverage_percent()
        ),
    }

    if cli.cov {
        println!("{}", goat::core::campaign_report(kernel.name, &result));
    }

    if result.detected() {
        ExitCode::FAILURE // bug found: nonzero, like a failing test
    } else {
        ExitCode::SUCCESS
    }
}
