//! `goat` — the command-line front end, mirroring the original tool's
//! workflow (paper appendix, listing 3):
//!
//! ```text
//! Usage of goat:
//!   -target <name>   benchmark kernel to test ('list' enumerates, 'all' sweeps)
//!   -d <int>         number of delays (delay bound D, default 0)
//!   -freq <int>      frequency of test executions (default 100)
//!   -cov             include the coverage report in the evaluation
//!   -seed <int>      base seed (default 1)
//! ```
//!
//! Example: `goat -target moby28462 -d 2 -freq 200 -cov`

use goat::core::{bug_report, Goat, GoatConfig, Program, SuiteConfig};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    target: String,
    d: u32,
    freq: usize,
    cov: bool,
    seed: u64,
    keep_running: bool,
    // Supervision knobs: `None` keeps the env-derived default from
    // `GoatConfig::default()` (GOAT_ITER_TIMEOUT_MS & friends).
    iter_timeout_ms: Option<u64>,
    checkpoint: Option<String>,
    max_retries: Option<u32>,
    quarantine_after: Option<u32>,
    quarantine_crashes: Option<u32>,
    // Exploration knobs (flags win over GOAT_STRATEGY / GOAT_GUIDED /
    // GOAT_SATURATION_WINDOW).
    strategy: Option<goat::runtime::StrategyKind>,
    guided: Option<bool>,
    saturation_window: Option<usize>,
    // Hot-path knobs: the flag seeds the matching `GOAT_*` variable
    // only when the environment leaves it unset, so an operator's env
    // always wins over a script's flag.
    spin: Option<u32>,
    memo: Option<String>,
    trace_pool_max: Option<usize>,
    // Process isolation (flags win over GOAT_ISOLATE / GOAT_IPC /
    // GOAT_IPC_SHM / GOAT_IPC_BATCH).
    isolate: Option<goat::core::IsolateMode>,
    ipc: Option<goat::core::IpcMode>,
    ipc_shm: Option<bool>,
    ipc_batch: Option<usize>,
    // Suite knobs for `-target all` (flags win over GOAT_JOBS /
    // GOAT_SUITE_REALLOC).
    jobs: Option<usize>,
    realloc: Option<bool>,
}

/// Set `name` only when the environment does not already define it.
fn env_default(name: &str, value: &str) {
    if std::env::var_os(name).is_none() {
        std::env::set_var(name, value);
    }
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        target: String::new(),
        d: 0,
        freq: 100,
        cov: false,
        seed: 1,
        keep_running: false,
        iter_timeout_ms: None,
        checkpoint: None,
        max_retries: None,
        quarantine_after: None,
        quarantine_crashes: None,
        strategy: None,
        guided: None,
        saturation_window: None,
        spin: None,
        memo: None,
        trace_pool_max: None,
        isolate: None,
        ipc: None,
        ipc_shm: None,
        ipc_batch: None,
        jobs: None,
        realloc: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match arg.as_str() {
            "-target" | "--target" => cli.target = take("-target")?,
            "-d" | "--d" => cli.d = num("-d", take("-d")?)?,
            "-freq" | "--freq" => cli.freq = num("-freq", take("-freq")?)?,
            "-seed" | "--seed" => cli.seed = num("-seed", take("-seed")?)?,
            "-cov" | "--cov" => cli.cov = true,
            "-keep-running" | "--keep-running" => cli.keep_running = true,
            "-iter-timeout-ms" | "--iter-timeout-ms" => {
                cli.iter_timeout_ms = Some(num("-iter-timeout-ms", take("-iter-timeout-ms")?)?)
            }
            "-checkpoint" | "--checkpoint" => cli.checkpoint = Some(take("-checkpoint")?),
            "-max-retries" | "--max-retries" => {
                cli.max_retries = Some(num("-max-retries", take("-max-retries")?)?)
            }
            "-quarantine-after" | "--quarantine-after" => {
                cli.quarantine_after = Some(num("-quarantine-after", take("-quarantine-after")?)?)
            }
            "-quarantine-crashes" | "--quarantine-crashes" => {
                cli.quarantine_crashes =
                    Some(num("-quarantine-crashes", take("-quarantine-crashes")?)?)
            }
            "-strategy" | "--strategy" => {
                let v = take("-strategy")?;
                cli.strategy = Some(
                    goat::runtime::StrategyKind::parse(&v)
                        .map_err(|e| format!("-strategy: {e}"))?,
                );
            }
            "-guided" | "--guided" => cli.guided = Some(true),
            "-saturation-window" | "--saturation-window" => {
                let n: usize = num("-saturation-window", take("-saturation-window")?)?;
                if n == 0 {
                    return Err("-saturation-window: must be >= 1".into());
                }
                cli.saturation_window = Some(n);
            }
            "-spin" | "--spin" => cli.spin = Some(num("-spin", take("-spin")?)?),
            "-memo" | "--memo" => {
                let v = take("-memo")?;
                match v.as_str() {
                    "0" | "off" | "1" | "on" | "verify" => cli.memo = Some(v),
                    other => return Err(format!("-memo: expected off|on|verify, got {other}")),
                }
            }
            "-trace-pool-max" | "--trace-pool-max" => {
                cli.trace_pool_max = Some(num("-trace-pool-max", take("-trace-pool-max")?)?)
            }
            "-isolate" | "--isolate" => {
                let v = take("-isolate")?;
                cli.isolate = Some(
                    goat::core::IsolateMode::parse(&v)
                        .ok_or_else(|| format!("-isolate: expected off|proc, got {v}"))?,
                );
            }
            "-ipc" | "--ipc" => {
                let v = take("-ipc")?;
                cli.ipc = Some(
                    goat::core::IpcMode::parse(&v)
                        .ok_or_else(|| format!("-ipc: expected bin|json, got {v}"))?,
                );
            }
            "-jobs" | "--jobs" => {
                let n: usize = num("-jobs", take("-jobs")?)?;
                if n == 0 {
                    return Err("-jobs: must be >= 1".into());
                }
                cli.jobs = Some(n);
            }
            "-realloc" | "--realloc" => cli.realloc = Some(true),
            "-ipc-shm" | "--ipc-shm" => cli.ipc_shm = Some(true),
            "-ipc-batch" | "--ipc-batch" => {
                let n: usize = num("-ipc-batch", take("-ipc-batch")?)?;
                if n == 0 {
                    return Err("-ipc-batch: must be >= 1".into());
                }
                cli.ipc_batch = Some(n);
            }
            "-h" | "--help" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cli.target.is_empty() {
        return Err("missing -target (use '-target list' to enumerate kernels)".into());
    }
    // Seed the env-first hot-path knobs before anything reads (and
    // caches) them: the runtime's spin budget, the analysis memo mode
    // and the trace-buffer pool cap are all process-wide defaults
    // resolved from GOAT_* on first use.
    if let Some(s) = cli.spin {
        env_default("GOAT_SPIN", &s.to_string());
    }
    if let Some(m) = &cli.memo {
        env_default("GOAT_MEMO", m);
    }
    if let Some(n) = cli.trace_pool_max {
        env_default("GOAT_TRACE_POOL_MAX", &n.to_string());
    }
    Ok(cli)
}

/// Base campaign config for this invocation: the common flags plus the
/// supervision overrides (flags win over the `GOAT_*` env defaults).
fn campaign_config(cli: &Cli) -> GoatConfig {
    let mut cfg = GoatConfig::default()
        .with_delay_bound(cli.d)
        .with_iterations(cli.freq)
        .with_seed0(cli.seed);
    if cli.keep_running {
        cfg = cfg.keep_running();
    }
    if let Some(ms) = cli.iter_timeout_ms {
        cfg = cfg.with_iter_timeout_ms((ms > 0).then_some(ms));
    }
    if let Some(path) = &cli.checkpoint {
        cfg = cfg.with_checkpoint(path.clone());
    }
    if let Some(n) = cli.max_retries {
        cfg = cfg.with_max_retries(n);
    }
    if let Some(n) = cli.quarantine_after {
        cfg = cfg.with_quarantine_after(n);
    }
    if let Some(n) = cli.quarantine_crashes {
        cfg = cfg.with_quarantine_crashes(n);
    }
    if let Some(s) = cli.strategy {
        cfg = cfg.with_strategy(s);
    }
    if let Some(on) = cli.guided {
        cfg = cfg.with_guided(on);
    }
    if let Some(w) = cli.saturation_window {
        cfg = cfg.with_saturation_window(Some(w));
    }
    if let Some(m) = cli.isolate {
        cfg = cfg.with_isolate(m);
    }
    if let Some(m) = cli.ipc {
        cfg = cfg.with_ipc(m);
    }
    if let Some(on) = cli.ipc_shm {
        cfg = cfg.with_ipc_shm(on);
    }
    if let Some(n) = cli.ipc_batch {
        cfg = cfg.with_ipc_batch(n);
    }
    cfg
}

/// Exit code for a usage error (bad flags, unknown kernel) — EX_USAGE.
const EXIT_USAGE: u8 = 64;
/// Exit code when a campaign was quarantined or otherwise could not
/// deliver a verdict (infra failure).
const EXIT_INFRA: u8 = 2;
/// Exit code when a bug was detected (like a failing test).
const EXIT_BUG: u8 = 1;

fn print_help() {
    println!(
        "goat — automated concurrency analysis and debugging (GoAT reproduction)\n\n\
         usage: goat -target <kernel> [-d <int>] [-freq <int>] [-cov] [-seed <int>]\n\n\
         \x20 -target <name>  benchmark kernel to test ('list' enumerates all 68)\n\
         \x20 -d <int>        delay bound D: max injected yields per execution (default 0)\n\
         \x20 -freq <int>     maximum testing iterations (default 100)\n\
         \x20 -cov            print the coverage report after the campaign\n\
         \x20 -seed <int>     base seed (default 1)\n\n\
         supervision (flags override the matching GOAT_* env knobs):\n\
         \x20 -keep-running             run the full budget even after a detection\n\
         \x20 -iter-timeout-ms <int>    per-iteration watchdog; 0 disables (GOAT_ITER_TIMEOUT_MS)\n\
         \x20 -checkpoint <path>        persist/resume campaign progress (GOAT_CHECKPOINT)\n\
         \x20 -max-retries <int>        retries for infra failures (GOAT_MAX_RETRIES)\n\
         \x20 -quarantine-after <int>   quarantine after N infra failures (GOAT_QUARANTINE_AFTER)\n\
         \x20 -quarantine-crashes <int> quarantine after N crashed iterations, 0 = off\n\
         \x20                           (GOAT_QUARANTINE_CRASHES)\n\n\
         exploration (flags override the matching GOAT_* env knobs):\n\
         \x20 -strategy <spec>          scheduling strategy: native | random | pct[:<depth>[:<len>]]\n\
         \x20                           (GOAT_STRATEGY; default native)\n\
         \x20 -guided                   coverage-guided arm selection over strategy/yield/delay\n\
         \x20                           configurations (GOAT_GUIDED)\n\
         \x20 -saturation-window <int>  stop after N consecutive iterations with no new\n\
         \x20                           coverage (GOAT_SATURATION_WINDOW)\n\n\
         execution hot path (flags seed the GOAT_* env knob; env remains the override):\n\
         \x20 -spin <int>               token-handoff spin budget before parking, 0 = park\n\
         \x20                           immediately (GOAT_SPIN; default 100 on multi-core\n\
         \x20                           hosts, 0 on a single CPU)\n\
         \x20 -memo <off|on|verify>     duplicate-schedule analysis memoization; verify\n\
         \x20                           re-analyzes hits and asserts equality (GOAT_MEMO)\n\
         \x20 -trace-pool-max <int>     recycled trace buffers kept per process\n\
         \x20                           (GOAT_TRACE_POOL_MAX, default 32)\n\n\
         process isolation (flags override the matching GOAT_* env knobs):\n\
         \x20 -isolate <off|proc>       run each iteration in a sandboxed worker\n\
         \x20                           subprocess with crash forensics and rlimit\n\
         \x20                           jails (GOAT_ISOLATE; default off)\n\
         \x20 -ipc <bin|json>           worker wire encoding: compact binary frames or\n\
         \x20                           self-describing JSON (GOAT_IPC; default bin)\n\
         \x20 -ipc-shm                  ship result payloads through a file-backed\n\
         \x20                           shared-memory ring instead of the pipe; binary\n\
         \x20                           mode only, auto-falls back (GOAT_IPC_SHM)\n\
         \x20 -ipc-batch <int>          Run frames per pipe write; capped at the guided\n\
         \x20                           feedback lag (GOAT_IPC_BATCH; default 1)\n\n\
         suite mode, -target all (flags override the matching GOAT_* env knobs):\n\
         \x20 -jobs <int>               cross-kernel suite workers over one global\n\
         \x20                           work-stealing iteration queue; per-kernel output\n\
         \x20                           is byte-identical at any value (GOAT_JOBS;\n\
         \x20                           default GOAT_PARALLELISM, then 1)\n\
         \x20 -realloc                  early-stopping kernels donate unspent budget to\n\
         \x20                           still-exploring ones, deterministically\n\
         \x20                           (GOAT_SUITE_REALLOC)\n\n\
         exit codes: 0 clean, 1 bug detected, 2 quarantined/infra failure, 64 usage"
    );
}

struct KernelProgram(&'static goat::goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn main() -> ExitCode {
    // Hidden worker mode: `goat --worker` serves sandboxed runs over
    // stdin/stdout for a `GOAT_ISOLATE=proc` orchestrator. Intercepted
    // before flag parsing so the frame protocol owns the process.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        let code = goat::core::serve_worker(&|name| {
            goat::goker::by_name(name).map(|k| Arc::new(KernelProgram(k)) as Arc<dyn Program>)
        });
        return ExitCode::from(code.clamp(0, 255) as u8);
    }

    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("goat: {e}\n");
            print_help();
            return ExitCode::from(EXIT_USAGE);
        }
    };

    if cli.target == "list" {
        println!("{:<18} {:<11} {:<14} description", "name", "project", "cause");
        for k in goat::goker::all_kernels() {
            println!(
                "{:<18} {:<11} {:<14} {}",
                k.name,
                k.project.to_string(),
                k.cause.to_string(),
                k.description
            );
        }
        return ExitCode::SUCCESS;
    }

    if cli.target == "all" {
        // The paper's `-eval_conf … -freq` whole-benchmark run, over
        // the suite orchestrator's global work-stealing iteration
        // queue. Per-kernel sidecar derivation, summary-line ordering
        // (kernel order via the reorder buffer) and bug-trace recycling
        // all live in `run_suite`; output is byte-identical at any
        // `-jobs` value.
        let mut suite = SuiteConfig::default();
        if let Some(n) = cli.jobs {
            suite = suite.with_jobs(n);
        }
        if let Some(on) = cli.realloc {
            suite = suite.with_realloc(on);
        }
        let kernels: Vec<Arc<dyn Program>> = goat::goker::all_kernels()
            .into_iter()
            .map(|k| Arc::new(KernelProgram(k)) as Arc<dyn Program>)
            .collect();
        let mut detected = 0usize;
        let mut quarantined = 0usize;
        goat::core::run_suite(&campaign_config(&cli), &suite, &kernels, &mut |_, name, result| {
            if let Some(reason) = &result.quarantined {
                quarantined += 1;
                println!(
                    "{:<18} QUARANTINED ({reason}; {} iteration(s) skipped)",
                    name, result.skipped
                );
                return;
            }
            match result.first_detection {
                Some(iter) => {
                    detected += 1;
                    println!(
                        "{:<18} {:<10} (iteration {iter}, coverage {:.1}%)",
                        name,
                        result.bug.as_ref().map(|b| b.to_string()).unwrap_or_default(),
                        result.coverage_percent()
                    );
                }
                None => println!(
                    "{:<18} X          ({} iterations, coverage {:.1}%)",
                    name,
                    result.records.len(),
                    result.coverage_percent()
                ),
            }
        });
        println!(
            "
detected {detected}/68 at D={} within {} iterations",
            cli.d, cli.freq
        );
        return if quarantined > 0 {
            ExitCode::from(EXIT_INFRA)
        } else if detected == 68 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_BUG)
        };
    }

    let Some(kernel) = goat::goker::by_name(&cli.target) else {
        eprintln!("goat: unknown kernel '{}'; try -target list or -target all", cli.target);
        return ExitCode::from(EXIT_USAGE);
    };

    println!(
        "testing {} (D={}, freq={}, seed0={}) — {}",
        kernel.name, cli.d, cli.freq, cli.seed, kernel.description
    );
    let goat = Goat::new(campaign_config(&cli));
    let mut result = goat.test(Arc::new(KernelProgram(kernel)));

    if let Some(reason) = &result.quarantined {
        println!(
            "\nkernel quarantined after {} iteration(s): {reason} ({} skipped)",
            result.records.len(),
            result.skipped
        );
    }
    match (&result.bug, &result.bug_ect) {
        (Some(verdict), Some(ect)) => {
            println!(
                "\nbug detected on iteration {} ({} yields in the buggy run)\n",
                result.first_detection.expect("detected"),
                result.records.last().map(|r| r.yields).unwrap_or(0),
            );
            println!("{}", bug_report(kernel.name, verdict, ect));
        }
        // A worker crash leaves no trace to report — the evidence is
        // the forensics (signal, stderr tail) carried by the verdict.
        (Some(verdict), None) => {
            println!(
                "\nbug detected on iteration {} (no trace: the sandboxed worker died)\n",
                result.first_detection.expect("detected"),
            );
            println!("== {} ==\nverdict: {verdict}", kernel.name);
            if let Some(detail) = result.summary().bug_detail {
                println!("--- crash forensics ---\n{detail}");
            }
        }
        (None, _) => println!(
            "\nno bug detected in {} iterations (final coverage {:.1}%)",
            result.records.len(),
            result.coverage_percent()
        ),
    }

    if cli.cov {
        println!("{}", goat::core::campaign_report(kernel.name, &result));
    }

    // All reports are rendered; the bug trace's buffer can rejoin the
    // recycling pool (a no-op when no bug was found).
    result.recycle_bug_trace();

    // A lone-kernel run is over: kill any sandboxed workers still
    // parked in the persistent pool so nothing outlives the process's
    // useful life (the suite path drains inside `run_suite` instead).
    goat::core::isolate::drain_idle_workers();

    if result.detected() {
        ExitCode::from(EXIT_BUG) // bug found: nonzero, like a failing test
    } else if result.quarantined.is_some() {
        ExitCode::from(EXIT_INFRA) // no verdict: the campaign was cut short
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use goat::core::per_kernel_checkpoint;

    // The CLI delegates sidecar derivation to the suite orchestrator;
    // this pins the contract the `-checkpoint` docs promise.
    #[test]
    fn per_kernel_checkpoint_paths_are_distinct() {
        let base = std::path::Path::new("/tmp/cp.json");
        assert_eq!(
            per_kernel_checkpoint(base, "moby28462"),
            std::path::Path::new("/tmp/cp.moby28462.json")
        );
        let bare = std::path::Path::new("/tmp/cp");
        assert_eq!(
            per_kernel_checkpoint(bare, "etcd6873"),
            std::path::Path::new("/tmp/cp.etcd6873")
        );
        assert_ne!(
            per_kernel_checkpoint(base, "moby28462"),
            per_kernel_checkpoint(base, "etcd6873")
        );
    }
}
